// Allocation budgets for the hot wire path.
//
// A campaign encodes billions of probes and classifies millions of R2s; the
// per-packet allocation count is the difference between an L1-resident inner
// loop and one that lives in the allocator. These tests override the global
// operator new with a counter and lock the budgets in:
//
//   encode_into (warm per-shard scratch)   0 allocations
//   encode (convenience, fresh buffers)   <= 2 allocations
//   DecodeView::parse                      0 allocations
//   classify_r2, A-record answer           0 allocations
//   classify_r2, TXT/CNAME answer         <= 1 allocation (the answer text)
//
// The counter is process-global, so this file must stay its own test binary
// (orp_test gives every file one).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "analysis/flow.h"
#include "analysis/streaming.h"
#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/decode_view.h"
#include "dns/wire_template.h"
#include "net/capture_store.h"
#include "net/event_loop.h"
#include "net/stream.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "zone/cluster.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

/// Run `f` with counting enabled; returns the number of operator-new calls.
template <typename F>
std::uint64_t count_allocs(F&& f) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  f();
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace orp {
namespace {

using namespace orp::dns;

zone::SubdomainScheme probe_scheme() {
  return zone::SubdomainScheme(DnsName::must_parse("ucfsealresearch.net"),
                               5'000'000, 7);
}

Message probe_query(const zone::SubdomainScheme& scheme) {
  return make_query(0x4242, scheme.qname({3, 1234567}));
}

Message full_response(const zone::SubdomainScheme& scheme) {
  Message m = probe_query(scheme);
  m.header.flags.qr = true;
  m.header.flags.ra = true;
  m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kA,
                                     RRClass::kIN, 300,
                                     ARdata{net::IPv4Addr(93, 184, 216, 34)}});
  m.authority.push_back(ResourceRecord{
      DnsName::must_parse("ucfsealresearch.net"), RRType::kNS, RRClass::kIN,
      172800, NameRdata{DnsName::must_parse("ns1.ucfsealresearch.net")}});
  m.additional.push_back(ResourceRecord{
      DnsName::must_parse("ns1.ucfsealresearch.net"), RRType::kA, RRClass::kIN,
      172800, ARdata{net::IPv4Addr(45, 76, 18, 21)}});
  return m;
}

// R2Record::payload borrows the caller's wire buffer, so every call site
// must keep `wire` alive for as long as the record is used.
prober::R2Record record_for(const std::vector<std::uint8_t>& wire) {
  return prober::R2Record{net::SimTime{}, net::IPv4Addr(8, 8, 8, 8), wire};
}

TEST(AllocBudget, EncodeIntoWarmScratchAllocatesNothing) {
  const auto scheme = probe_scheme();
  const Message query = probe_query(scheme);
  const Message response = full_response(scheme);
  EncodeBuffer scratch;
  (void)encode_into(query, scratch);     // warm the scratch once
  (void)encode_into(response, scratch);
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      (void)encode_into(query, scratch);
      (void)encode_into(response, scratch);
    }
  });
  EXPECT_EQ(n, 0u) << "per-shard scratch must make re-encoding allocation-free";
}

// The template-stamped wire path: once a template is derived and the stamp
// scratch / staging arena are warm, producing a packet (memcpy + field
// pokes) and recognizing one (segment memcmps) never touch the allocator.
TEST(AllocBudget, TemplateStampAndMatchAllocateNothing) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(
      [&](const StampVars& v) {
        return make_query(v.txn, scheme.qname({v.cluster, v.index}));
      },
      scratch);
  ASSERT_TRUE(tpl.ok());

  StampVars v{0x1111, 3, 1234567, 0, 0};
  (void)tpl.stamp(v, scratch);  // warm the stamp scratch once
  const auto n_stamp = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      v.txn = static_cast<std::uint16_t>(i);
      (void)tpl.stamp(v, scratch);
    }
  });
  EXPECT_EQ(n_stamp, 0u) << "stamping into warm scratch must not allocate";

  std::vector<std::uint8_t> arena;
  arena.reserve(100 * tpl.size());  // the scanner pre-sizes its staging arena
  const auto n_append = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      v.index = static_cast<std::uint32_t>(i);
      tpl.stamp_append(v, arena);
    }
  });
  EXPECT_EQ(n_append, 0u) << "batch staging must reuse the reserved arena";

  const auto wire = tpl.stamp(v, scratch);
  StampVars out;
  const auto n_match = count_allocs([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(tpl.match(wire, out));
  });
  EXPECT_EQ(n_match, 0u) << "probe recognition must not allocate";
}

TEST(AllocBudget, ConvenienceEncodeStaysWithinTwoAllocations) {
  const auto scheme = probe_scheme();
  const Message query = probe_query(scheme);
  std::uint64_t n = 0;
  std::vector<std::uint8_t> wire;
  n = count_allocs([&] { wire = encode(query); });
  // One allocation for the output vector, one for the compression offsets;
  // both are up-front reserves, so there is no regrowth.
  EXPECT_LE(n, 2u);
  EXPECT_FALSE(wire.empty());
}

TEST(AllocBudget, DecodeViewAllocatesNothing) {
  const auto scheme = probe_scheme();
  const auto wire = encode(full_response(scheme));
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      const DecodeView v = DecodeView::parse(wire);
      ASSERT_TRUE(v.complete());
    }
  });
  EXPECT_EQ(n, 0u) << "DecodeView must borrow the wire buffer, not copy it";
}

TEST(AllocBudget, ClassifyARecordAnswerAllocatesNothing) {
  const auto scheme = probe_scheme();
  const auto wire = encode(full_response(scheme));
  const auto rec = record_for(wire);
  (void)analysis::classify_r2(rec, scheme);  // warm up
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      const auto view = analysis::classify_r2(rec, scheme);
      ASSERT_EQ(view.form, analysis::AnswerForm::kIp);
    }
  });
  EXPECT_EQ(n, 0u) << "the common A-record classify path must not allocate";
}

TEST(AllocBudget, ClassifyTextAnswersAllocateAtMostTheAnswerText) {
  const auto scheme = probe_scheme();

  Message txt = probe_query(scheme);
  txt.header.flags.qr = true;
  txt.answers.push_back(ResourceRecord{
      txt.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"a deliberately long garbage answer", "second chunk"}}});
  const auto txt_wire = encode(txt);
  const auto txt_rec = record_for(txt_wire);

  Message url = probe_query(scheme);
  url.header.flags.qr = true;
  url.answers.push_back(ResourceRecord{
      url.questions[0].qname, RRType::kCNAME, RRClass::kIN, 60,
      NameRdata{DnsName::must_parse("u.dcoin.co.long-enough-to-heap.example")}});
  const auto url_wire = encode(url);
  const auto url_rec = record_for(url_wire);

  const auto n_txt =
      count_allocs([&] { (void)analysis::classify_r2(txt_rec, scheme); });
  const auto n_url =
      count_allocs([&] { (void)analysis::classify_r2(url_rec, scheme); });
  EXPECT_LE(n_txt, 1u) << "TXT join must presize and allocate once";
  EXPECT_LE(n_url, 1u) << "URL answer must allocate only the rendered name";
}

TEST(AllocBudget, ClassifyBeatsMaterializingDecodeByTwoX) {
  // The acceptance bar: the DecodeView classify path allocates at most half
  // of what the Message-materializing decode alone used to cost it.
  const auto scheme = probe_scheme();
  Message txt = probe_query(scheme);
  txt.header.flags.qr = true;
  txt.answers.push_back(ResourceRecord{
      txt.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"a deliberately long garbage answer", "second chunk"}}});
  const auto wire = encode(txt);
  const auto rec = record_for(wire);

  const auto n_view =
      count_allocs([&] { (void)analysis::classify_r2(rec, scheme); });
  const auto n_materialize =
      count_allocs([&] { (void)decode_partial(rec.payload); });
  EXPECT_GE(n_materialize, 2 * std::max<std::uint64_t>(n_view, 1))
      << "view=" << n_view << " materialize=" << n_materialize;
}

// The tentpole budget: once the payload pool, event heap, and capture arena
// are warm, a full send→schedule→deliver→tap→capture round trip touches the
// allocator exactly zero times per packet.
TEST(AllocBudget, SteadyStateSendDeliverCaptureIsAllocationFree) {
  const auto scheme = probe_scheme();
  const auto wire = encode(probe_query(scheme));

  net::EventLoop loop;
  net::Network net{loop, 1};
  const net::Endpoint prober{net::IPv4Addr(1, 1, 1, 1), 54321};
  const net::Endpoint resolver{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  std::uint64_t handled = 0;
  net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
  net::CaptureStore store;
  store.attach(net, resolver.addr);  // every packet inbound -> retained

  constexpr int kBatch = 256;
  store.reserve(2 * kBatch, 2 * kBatch * wire.size());
  // Warm everything the steady state reuses: pool slabs and free list up to
  // the in-flight high-water mark, the event heap's backing vector, and the
  // capture arena reserved above.
  for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
  loop.run();

  const auto n = count_allocs([&] {
    for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
    loop.run();
  });
  EXPECT_EQ(n, 0u) << "warm-pool send->deliver->capture must not allocate";
  EXPECT_EQ(handled, 2u * kBatch);
  EXPECT_EQ(store.packet_count(), 2u * kBatch);
  EXPECT_EQ(net.pool().slab_count(), static_cast<std::size_t>(kBatch));
}

// The same round trip with the observability layer attached: per-event
// metric updates are slot-array increments against a pre-registered schema,
// so instrumentation must not move the zero-allocation budget at all.
TEST(AllocBudget, InstrumentedSteadyStatePathIsStillAllocationFree) {
  const auto scheme = probe_scheme();
  const auto wire = encode(probe_query(scheme));

  net::EventLoop loop;
  obs::Metrics metrics(obs::builtin().schema);
  loop.set_metrics(&metrics);
  net::Network net{loop, 1};
  const net::Endpoint prober{net::IPv4Addr(1, 1, 1, 1), 54321};
  const net::Endpoint resolver{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  std::uint64_t handled = 0;
  net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
  net::CaptureStore store;
  store.attach(net, resolver.addr);

  constexpr int kBatch = 256;
  store.reserve(2 * kBatch, 2 * kBatch * wire.size());
  for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
  loop.run();

  const auto n = count_allocs([&] {
    for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
    loop.run();
  });
  EXPECT_EQ(n, 0u) << "metric increments must never touch the allocator";
  const obs::Builtin& b = obs::builtin();
  EXPECT_EQ(metrics.counter(b.loop_events_run), 2u * kBatch);
  EXPECT_GE(metrics.gauge(b.loop_queue_peak), static_cast<std::uint64_t>(kBatch));
  EXPECT_EQ(metrics.histogram_count(b.loop_time_in_queue_us), 2u * kBatch);
}

// The tracer's per-packet fast path (the membership probe every downstream
// vantage runs, plus appending a span record into the reserved arena) must
// also stay off the allocator; only marking a *new* sampled flow may pay the
// hash-set node.
TEST(AllocBudget, TracerRecordPathIsAllocationFree) {
  obs::FlowTracer tracer(/*sample_every=*/1);
  tracer.reserve(/*flows=*/16, /*records=*/1024);
  tracer.begin_flow(0x1234, 0, net::SimTime::seconds(1), 0x01020304);

  const auto n = count_allocs([&] {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(tracer.marked(0x1234));
      ASSERT_FALSE(tracer.marked(0x9999));
      tracer.record(0x1234, obs::SpanPoint::kQ2Auth,
                    net::SimTime::seconds(2), 0x05060708);
    }
  });
  EXPECT_EQ(n, 0u) << "marked() + record() into a reserved arena must be free";
  EXPECT_EQ(tracer.records().size(), 201u);
}

// Heterogeneous map keys: grouping an auth-side packet into an existing flow
// probes the map with a stack-buffer canonical key, never a heap string.
TEST(AllocBudget, FlowGrouperAuthPacketLookupIsAllocationFree) {
  const auto scheme = probe_scheme();
  analysis::FlowGrouper grouper(scheme);
  grouper.add_probe(scheme.qname({3, 1234567}), net::IPv4Addr(5, 5, 5, 5));
  const auto wire = encode(probe_query(scheme));  // same qname as the probe
  grouper.add_auth_packet(wire, true);  // warm
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      grouper.add_auth_packet(wire, true);
      grouper.add_auth_packet(wire, false);
    }
  });
  EXPECT_EQ(n, 0u) << "flow lookups must not materialize key strings";
  EXPECT_EQ(grouper.flows().size(), 1u);
}

// The streaming-analysis budget: once every distinct value in the stream
// has been seen (the scratch view's text capacity is warm, the exemplars
// are set, the distinct-value sets contain their keys), classifying and
// folding an R2 into the shard's PartialTables is allocation-free. This is
// what lets the capture-time path replace the O(probes) view buffer
// without moving the per-packet cost.
TEST(AllocBudget, StreamingClassifyAndObserveAllocatesNothingSteadyState) {
  const auto scheme = probe_scheme();
  const intel::ThreatDb threats;  // empty: the common (benign) case
  intel::GeoDb geo;
  geo.build();
  intel::OrgDb orgs;
  orgs.build();
  analysis::StreamingAnalyzer analyzer(scheme, threats, geo, orgs);

  // Three steady-state shapes: a correct A answer (the overwhelmingly
  // common case), a repeated wrong A answer, and a repeated TXT answer.
  Message correct = probe_query(scheme);
  correct.header.flags.qr = true;
  correct.header.flags.ra = true;
  correct.answers.push_back(
      ResourceRecord{correct.questions[0].qname, RRType::kA, RRClass::kIN,
                     300, ARdata{scheme.ground_truth({3, 1234567})}});
  const auto correct_wire = encode(correct);

  Message wrong = probe_query(scheme);
  wrong.header.flags.qr = true;
  wrong.answers.push_back(ResourceRecord{wrong.questions[0].qname, RRType::kA,
                                         RRClass::kIN, 300,
                                         ARdata{net::IPv4Addr(203, 0, 113, 5)}});
  const auto wrong_wire = encode(wrong);

  Message txt = probe_query(scheme);
  txt.header.flags.qr = true;
  txt.answers.push_back(ResourceRecord{
      txt.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"a deliberately long garbage answer", "second chunk"}}});
  const auto txt_wire = encode(txt);

  const net::IPv4Addr resolver(8, 8, 8, 8);
  // Warm: first sight of each distinct wrong IP / text pays its set node
  // and the scratch view's text capacity; nothing after that may.
  analyzer.on_r2(net::SimTime{}, resolver, correct_wire);
  analyzer.on_r2(net::SimTime{}, resolver, wrong_wire);
  analyzer.on_r2(net::SimTime{}, resolver, txt_wire);

  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      analyzer.on_r2(net::SimTime{}, resolver, correct_wire);
      analyzer.on_r2(net::SimTime{}, resolver, wrong_wire);
      analyzer.on_r2(net::SimTime{}, resolver, txt_wire);
    }
  });
  EXPECT_EQ(n, 0u) << "per-R2 streaming classify+observe must not allocate";

  const analysis::PartialTables& t = analyzer.tables();
  EXPECT_EQ(t.r2_total, 303u);
  EXPECT_EQ(t.answers.correct, 101u);
  EXPECT_EQ(t.answers.incorrect, 202u);
  EXPECT_EQ(t.wrong_ip_counts.size(), 1u);
  EXPECT_EQ(t.unique_strings.size(), 1u);
}

// Exemplar replacement is the one arrival-order-dependent moment in the
// stream; even it stays off the allocator when the replacement text fits
// the capacity already banked in the slot.
TEST(AllocBudget, ExemplarOfferWithWarmCapacityAllocatesNothing) {
  analysis::TextExemplar ex;
  std::string long_text(64, 'a');
  std::string short_text(32, 'b');
  ASSERT_TRUE(ex.offer(200, long_text));  // banks 64 bytes of capacity
  const auto n = count_allocs([&] {
    ASSERT_TRUE(ex.offer(100, short_text));   // smaller resolver replaces
    ASSERT_FALSE(ex.offer(150, long_text));   // larger resolver does not
  });
  EXPECT_EQ(n, 0u) << "replacement within banked capacity must be free";
  EXPECT_EQ(ex.text, short_text);
  EXPECT_EQ(ex.resolver, 100u);
}

// The stream-transport budget: on an established connection, the whole
// send → segment → deliver → reassemble round (length prefix, MSS split,
// ordered arrival, message re-slab) reuses pool slabs, the warm reassembly
// buffer, and the warm event heap — zero allocations per message.
namespace stream_budget {

struct CountingServer : net::StreamHandler {
  std::uint64_t received = 0;
  std::uint64_t bytes = 0;
  void on_message(net::ConnId, net::SimTime,
                  const net::PayloadRef& m) override {
    ++received;
    bytes += m.span().size();
  }
};

struct QuietClient : net::StreamHandler {
  bool up = false;
  void on_established(net::ConnId) override { up = true; }
  void on_message(net::ConnId, net::SimTime, const net::PayloadRef&) override {}
};

}  // namespace stream_budget

TEST(AllocBudget, StreamSteadyStateMessagesAllocateNothing) {
  net::EventLoop loop;
  net::Network net{loop, 1};
  net::StreamNet& streams = net.streams();
  streams.set_mss(128);  // a 500-byte message splits into 4 segments

  const net::Endpoint client{net::IPv4Addr(1, 1, 1, 1), 49152};
  const net::Endpoint server{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  stream_budget::CountingServer srv;
  stream_budget::QuietClient cli;
  streams.listen(server, &srv);
  const net::ConnId c = streams.connect(client, server, &cli);
  loop.run();
  ASSERT_TRUE(cli.up);

  // One warm batch covers the in-flight high-water mark: segment slabs and
  // message slabs land in separate capacity classes of the pool's free
  // list (see BufferPool), the event heap's backing grows once, and the
  // peer's reassembly buffer banks its capacity.
  constexpr int kBatch = 256;
  const std::vector<std::uint8_t> msg(500, 0xAB);
  for (int i = 0; i < kBatch; ++i) ASSERT_TRUE(streams.send_message(c, msg));
  loop.run();
  ASSERT_EQ(srv.received, static_cast<std::uint64_t>(kBatch));

  const auto n = count_allocs([&] {
    for (int i = 0; i < kBatch; ++i) ASSERT_TRUE(streams.send_message(c, msg));
    loop.run();
  });
  EXPECT_EQ(n, 0u)
      << "warm send->segment->deliver->reassemble must not allocate";
  EXPECT_EQ(srv.received, 2u * kBatch);
  EXPECT_EQ(srv.bytes, 2u * kBatch * msg.size());
}

// Connection lifecycle from pools only: once one connect/close cycle has
// populated the slot free list and the event heap, every further handshake,
// message, and orderly close stays off the allocator, and the slot
// high-water mark does not move.
TEST(AllocBudget, StreamConnectionSetupComesFromPoolsOnly) {
  net::EventLoop loop;
  net::Network net{loop, 1};
  net::StreamNet& streams = net.streams();

  const net::Endpoint client{net::IPv4Addr(1, 1, 1, 1), 49152};
  const net::Endpoint server{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  stream_budget::CountingServer srv;
  stream_budget::QuietClient cli;
  streams.listen(server, &srv);

  const std::vector<std::uint8_t> msg(100, 0x42);
  const auto cycle = [&] {
    const net::ConnId c = streams.connect(client, server, &cli);
    loop.run();
    ASSERT_TRUE(streams.established(c));
    ASSERT_TRUE(streams.send_message(c, msg));
    streams.close(c);
    loop.run();
  };
  // A few warm cycles: slots, scratch, reassembly capacity, heap backing,
  // and slab-capacity promotion through the shared free list (see the
  // steady-state test above).
  for (int i = 0; i < 4; ++i) cycle();
  const std::size_t slots = streams.conn_slots();

  const auto n = count_allocs([&] {
    for (int i = 0; i < 32; ++i) cycle();
  });
  EXPECT_EQ(n, 0u) << "recycled connection records must serve every cycle";
  EXPECT_EQ(streams.conn_slots(), slots) << "no new slots after warm-up";
  EXPECT_EQ(streams.active_conns(), 0u);
  EXPECT_EQ(srv.received, 36u);
}

TEST(AllocBudget, ProbeNameGenerationAndKeyAreSingleAllocations) {
  const auto scheme = probe_scheme();
  DnsName name = scheme.qname({3, 1234567});
  const auto n_gen =
      count_allocs([&] { (void)scheme.qname(zone::SubdomainId{4, 7}); });
  const auto n_key = count_allocs([&] { (void)name.canonical_key(); });
  EXPECT_LE(n_gen, 1u) << "flat-name qname synthesis must build in place";
  EXPECT_LE(n_key, 1u);
}

}  // namespace
}  // namespace orp
