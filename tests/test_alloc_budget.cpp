// Allocation budgets for the hot wire path.
//
// A campaign encodes billions of probes and classifies millions of R2s; the
// per-packet allocation count is the difference between an L1-resident inner
// loop and one that lives in the allocator. These tests override the global
// operator new with a counter and lock the budgets in:
//
//   encode_into (warm per-shard scratch)   0 allocations
//   encode (convenience, fresh buffers)   <= 2 allocations
//   DecodeView::parse                      0 allocations
//   classify_r2, A-record answer           0 allocations
//   classify_r2, TXT/CNAME answer         <= 1 allocation (the answer text)
//
// The counter is process-global, so this file must stay its own test binary
// (orp_test gives every file one).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "analysis/flow.h"
#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/decode_view.h"
#include "zone/cluster.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

/// Run `f` with counting enabled; returns the number of operator-new calls.
template <typename F>
std::uint64_t count_allocs(F&& f) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  f();
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace orp {
namespace {

using namespace orp::dns;

zone::SubdomainScheme probe_scheme() {
  return zone::SubdomainScheme(DnsName::must_parse("ucfsealresearch.net"),
                               5'000'000, 7);
}

Message probe_query(const zone::SubdomainScheme& scheme) {
  return make_query(0x4242, scheme.qname({3, 1234567}));
}

Message full_response(const zone::SubdomainScheme& scheme) {
  Message m = probe_query(scheme);
  m.header.flags.qr = true;
  m.header.flags.ra = true;
  m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kA,
                                     RRClass::kIN, 300,
                                     ARdata{net::IPv4Addr(93, 184, 216, 34)}});
  m.authority.push_back(ResourceRecord{
      DnsName::must_parse("ucfsealresearch.net"), RRType::kNS, RRClass::kIN,
      172800, NameRdata{DnsName::must_parse("ns1.ucfsealresearch.net")}});
  m.additional.push_back(ResourceRecord{
      DnsName::must_parse("ns1.ucfsealresearch.net"), RRType::kA, RRClass::kIN,
      172800, ARdata{net::IPv4Addr(45, 76, 18, 21)}});
  return m;
}

prober::R2Record record_for(const std::vector<std::uint8_t>& wire) {
  return prober::R2Record{net::SimTime{}, net::IPv4Addr(8, 8, 8, 8), wire};
}

TEST(AllocBudget, EncodeIntoWarmScratchAllocatesNothing) {
  const auto scheme = probe_scheme();
  const Message query = probe_query(scheme);
  const Message response = full_response(scheme);
  EncodeBuffer scratch;
  (void)encode_into(query, scratch);     // warm the scratch once
  (void)encode_into(response, scratch);
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      (void)encode_into(query, scratch);
      (void)encode_into(response, scratch);
    }
  });
  EXPECT_EQ(n, 0u) << "per-shard scratch must make re-encoding allocation-free";
}

TEST(AllocBudget, ConvenienceEncodeStaysWithinTwoAllocations) {
  const auto scheme = probe_scheme();
  const Message query = probe_query(scheme);
  std::uint64_t n = 0;
  std::vector<std::uint8_t> wire;
  n = count_allocs([&] { wire = encode(query); });
  // One allocation for the output vector, one for the compression offsets;
  // both are up-front reserves, so there is no regrowth.
  EXPECT_LE(n, 2u);
  EXPECT_FALSE(wire.empty());
}

TEST(AllocBudget, DecodeViewAllocatesNothing) {
  const auto scheme = probe_scheme();
  const auto wire = encode(full_response(scheme));
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      const DecodeView v = DecodeView::parse(wire);
      ASSERT_TRUE(v.complete());
    }
  });
  EXPECT_EQ(n, 0u) << "DecodeView must borrow the wire buffer, not copy it";
}

TEST(AllocBudget, ClassifyARecordAnswerAllocatesNothing) {
  const auto scheme = probe_scheme();
  const auto rec = record_for(encode(full_response(scheme)));
  (void)analysis::classify_r2(rec, scheme);  // warm up
  const auto n = count_allocs([&] {
    for (int i = 0; i < 100; ++i) {
      const auto view = analysis::classify_r2(rec, scheme);
      ASSERT_EQ(view.form, analysis::AnswerForm::kIp);
    }
  });
  EXPECT_EQ(n, 0u) << "the common A-record classify path must not allocate";
}

TEST(AllocBudget, ClassifyTextAnswersAllocateAtMostTheAnswerText) {
  const auto scheme = probe_scheme();

  Message txt = probe_query(scheme);
  txt.header.flags.qr = true;
  txt.answers.push_back(ResourceRecord{
      txt.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"a deliberately long garbage answer", "second chunk"}}});
  const auto txt_rec = record_for(encode(txt));

  Message url = probe_query(scheme);
  url.header.flags.qr = true;
  url.answers.push_back(ResourceRecord{
      url.questions[0].qname, RRType::kCNAME, RRClass::kIN, 60,
      NameRdata{DnsName::must_parse("u.dcoin.co.long-enough-to-heap.example")}});
  const auto url_rec = record_for(encode(url));

  const auto n_txt =
      count_allocs([&] { (void)analysis::classify_r2(txt_rec, scheme); });
  const auto n_url =
      count_allocs([&] { (void)analysis::classify_r2(url_rec, scheme); });
  EXPECT_LE(n_txt, 1u) << "TXT join must presize and allocate once";
  EXPECT_LE(n_url, 1u) << "URL answer must allocate only the rendered name";
}

TEST(AllocBudget, ClassifyBeatsMaterializingDecodeByTwoX) {
  // The acceptance bar: the DecodeView classify path allocates at most half
  // of what the Message-materializing decode alone used to cost it.
  const auto scheme = probe_scheme();
  Message txt = probe_query(scheme);
  txt.header.flags.qr = true;
  txt.answers.push_back(ResourceRecord{
      txt.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"a deliberately long garbage answer", "second chunk"}}});
  const auto rec = record_for(encode(txt));

  const auto n_view =
      count_allocs([&] { (void)analysis::classify_r2(rec, scheme); });
  const auto n_materialize =
      count_allocs([&] { (void)decode_partial(rec.payload); });
  EXPECT_GE(n_materialize, 2 * std::max<std::uint64_t>(n_view, 1))
      << "view=" << n_view << " materialize=" << n_materialize;
}

TEST(AllocBudget, ProbeNameGenerationAndKeyAreSingleAllocations) {
  const auto scheme = probe_scheme();
  DnsName name = scheme.qname({3, 1234567});
  const auto n_gen =
      count_allocs([&] { (void)scheme.qname(zone::SubdomainId{4, 7}); });
  const auto n_key = count_allocs([&] { (void)name.canonical_key(); });
  EXPECT_LE(n_gen, 1u) << "flat-name qname synthesis must build in place";
  EXPECT_LE(n_key, 1u);
}

}  // namespace
}  // namespace orp
