#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/report.h"
#include "analysis/streaming.h"
#include "dns/builder.h"

namespace orp::analysis {
namespace {

const zone::SubdomainScheme& scheme() {
  static const zone::SubdomainScheme s(
      dns::DnsName::must_parse("ucfsealresearch.net"), 1000, 7);
  return s;
}

// R2Record::payload borrows its bytes, so the test helper bundles the wire
// buffer with the record; converting to R2Record keeps the span valid for as
// long as the OwnedR2 lives (the full expression, for temporaries).
struct OwnedR2 {
  std::vector<std::uint8_t> wire;
  prober::R2Record rec;
  operator const prober::R2Record&() const { return rec; }  // NOLINT
};

OwnedR2 record_from(const dns::Message& msg,
                    net::IPv4Addr resolver = net::IPv4Addr(9, 9, 9, 9),
                    bool raw_counts = false) {
  OwnedR2 o;
  o.rec.resolver = resolver;
  o.wire = raw_counts ? dns::encode_raw_counts(msg) : dns::encode(msg);
  o.rec.payload = o.wire;
  return o;
}

dns::Message base_response(zone::SubdomainId id) {
  dns::Message q = dns::make_query(1, scheme().qname(id));
  dns::Message r = dns::make_response(q);
  r.header.flags.ra = true;
  return r;
}

// ---- classify_r2 -----------------------------------------------------------------

TEST(ClassifyR2, CorrectAnswer) {
  const zone::SubdomainId id{0, 5};
  dns::Message r = base_response(id);
  r.answers.push_back(dns::ResourceRecord{r.questions[0].qname, dns::RRType::kA,
                                          dns::RRClass::kIN, 300,
                                          dns::ARdata{scheme().ground_truth(id)}});
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_TRUE(v.has_question);
  EXPECT_EQ(v.form, AnswerForm::kIp);
  EXPECT_TRUE(v.correct);
  EXPECT_TRUE(v.ra);
  ASSERT_TRUE(v.subdomain.has_value());
  EXPECT_EQ(*v.subdomain, id);
}

TEST(ClassifyR2, IncorrectIpAnswer) {
  dns::Message r = base_response({0, 5});
  r.answers.push_back(dns::ResourceRecord{
      r.questions[0].qname, dns::RRType::kA, dns::RRClass::kIN, 300,
      dns::ARdata{net::IPv4Addr(216, 194, 64, 193)}});
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_EQ(v.form, AnswerForm::kIp);
  EXPECT_FALSE(v.correct);
  EXPECT_EQ(v.answer_ip->to_string(), "216.194.64.193");
}

TEST(ClassifyR2, NoAnswer) {
  dns::Message r = base_response({0, 5});
  r.header.flags.rcode = dns::Rcode::kRefused;
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_EQ(v.form, AnswerForm::kNone);
  EXPECT_FALSE(v.has_answer());
  EXPECT_EQ(v.rcode, dns::Rcode::kRefused);
}

TEST(ClassifyR2, UrlAnswer) {
  dns::Message r = base_response({0, 5});
  r.answers.push_back(dns::ResourceRecord{
      r.questions[0].qname, dns::RRType::kCNAME, dns::RRClass::kIN, 300,
      dns::NameRdata{dns::DnsName::must_parse("u.dcoin.co")}});
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_EQ(v.form, AnswerForm::kUrl);
  EXPECT_EQ(v.answer_text, "u.dcoin.co");
}

TEST(ClassifyR2, StringAnswer) {
  dns::Message r = base_response({0, 5});
  r.answers.push_back(dns::ResourceRecord{r.questions[0].qname,
                                          dns::RRType::kTXT, dns::RRClass::kIN,
                                          300, dns::TxtRdata{{"wild"}}});
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_EQ(v.form, AnswerForm::kString);
  EXPECT_EQ(v.answer_text, "wild");
}

TEST(ClassifyR2, RawBytesAnswerIsStringForm) {
  dns::Message r = base_response({0, 5});
  r.answers.push_back(dns::ResourceRecord{
      r.questions[0].qname, static_cast<dns::RRType>(250), dns::RRClass::kIN,
      300, dns::RawRdata{250, {0x04, 0xb4}}});
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_EQ(v.form, AnswerForm::kString);
  EXPECT_EQ(v.answer_text, "04b4");
}

TEST(ClassifyR2, UndecodableAnswerSection) {
  dns::Message r = base_response({0, 5});
  r.header.qdcount = 1;
  r.header.ancount = 1;  // claims an answer that is not there
  const R2View v = classify_r2(record_from(r, net::IPv4Addr(9, 9, 9, 9), true),
                               scheme());
  EXPECT_TRUE(v.has_question);
  EXPECT_EQ(v.form, AnswerForm::kUndecodable);
  EXPECT_TRUE(v.has_answer());
}

TEST(ClassifyR2, EmptyQuestion) {
  dns::Message r;
  r.header.flags.qr = true;
  r.header.flags.ra = true;
  r.header.flags.rcode = dns::Rcode::kServFail;
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_FALSE(v.has_question);
  EXPECT_TRUE(v.header_decoded);
  EXPECT_TRUE(v.ra);
}

TEST(ClassifyR2, ForeignQnameHasNoGroundTruth) {
  dns::Message q = dns::make_query(1, dns::DnsName::must_parse("x.other.org"));
  dns::Message r = dns::make_a_response(q, net::IPv4Addr(1, 2, 3, 4));
  const R2View v = classify_r2(record_from(r), scheme());
  EXPECT_TRUE(v.has_question);
  EXPECT_FALSE(v.subdomain.has_value());
  EXPECT_FALSE(v.correct);  // unverifiable counts as not-correct
}

// ---- Aggregation helpers -----------------------------------------------------------

std::vector<R2View> synthetic_views() {
  // 4 correct (ra=1), 2 incorrect-ip (ra=0, aa=1), 1 url, 1 string,
  // 3 no-answer refused, 1 empty-question.
  std::vector<R2View> views;
  for (int i = 0; i < 4; ++i) {
    R2View v;
    v.has_question = true;
    v.ra = true;
    v.form = AnswerForm::kIp;
    v.correct = true;
    v.answer_ip = net::IPv4Addr(50, 1, 1, static_cast<std::uint8_t>(i));
    views.push_back(v);
  }
  for (int i = 0; i < 2; ++i) {
    R2View v;
    v.has_question = true;
    v.aa = true;
    v.form = AnswerForm::kIp;
    v.answer_ip = net::IPv4Addr(208, 91, 197, 91);
    v.resolver = net::IPv4Addr(99, 0, 0, static_cast<std::uint8_t>(i));
    views.push_back(v);
  }
  {
    R2View v;
    v.has_question = true;
    v.form = AnswerForm::kUrl;
    v.answer_text = "u.dcoin.co";
    views.push_back(v);
    v.form = AnswerForm::kString;
    v.answer_text = "wild";
    views.push_back(v);
  }
  for (int i = 0; i < 3; ++i) {
    R2View v;
    v.has_question = true;
    v.rcode = dns::Rcode::kRefused;
    views.push_back(v);
  }
  {
    R2View v;
    v.has_question = false;
    v.ra = true;
    v.rcode = dns::Rcode::kServFail;
    views.push_back(v);
  }
  return views;
}

TEST(AnswerAnalysis, TableThreeShape) {
  const auto views = synthetic_views();
  const AnswerBreakdown b = analyze_answers(views);
  EXPECT_EQ(b.r2, 11u);  // empty-question excluded
  EXPECT_EQ(b.without_answer, 3u);
  EXPECT_EQ(b.correct, 4u);
  EXPECT_EQ(b.incorrect, 4u);  // 2 wrong IP + url + string
  EXPECT_DOUBLE_EQ(b.err_percent(), 50.0);
}

TEST(HeaderAnalysis, RaTable) {
  const auto views = synthetic_views();
  const FlagTable t = analyze_ra(views);
  EXPECT_EQ(t.bit1.correct, 4u);
  EXPECT_EQ(t.bit0.incorrect, 4u);
  EXPECT_EQ(t.bit0.without_answer, 3u);
  EXPECT_EQ(t.bit0.total() + t.bit1.total(), 11u);
}

TEST(HeaderAnalysis, AaTable) {
  const auto views = synthetic_views();
  const FlagTable t = analyze_aa(views);
  EXPECT_EQ(t.bit1.incorrect, 2u);
  EXPECT_EQ(t.bit1.without_answer, 0u);
  EXPECT_DOUBLE_EQ(t.bit1.err_percent(), 100.0);
}

TEST(HeaderAnalysis, RcodeTable) {
  const auto views = synthetic_views();
  const RcodeTable t = analyze_rcodes(views);
  EXPECT_EQ(t.row(dns::Rcode::kNoError).with_answer, 8u);
  EXPECT_EQ(t.row(dns::Rcode::kRefused).without_answer, 3u);
  EXPECT_EQ(t.error_rcode_with_answer(), 0u);
}

TEST(IncorrectAnswers, FormsAndUniques) {
  const auto views = synthetic_views();
  const IncorrectSummary s = analyze_incorrect(views);
  EXPECT_EQ(s.ip.r2, 2u);
  EXPECT_EQ(s.ip.unique, 1u);  // both point at 208.91.197.91
  EXPECT_EQ(s.url.r2, 1u);
  EXPECT_EQ(s.str.r2, 1u);
  EXPECT_EQ(s.total_r2(), 4u);
}

TEST(IncorrectAnswers, TopKRankingAndAttribution) {
  intel::OrgDb orgs;
  const auto confluence = *net::IPv4Addr::parse("208.91.197.91");
  orgs.add_range(confluence, confluence, "Confluence Network Inc");
  orgs.build();
  intel::ThreatDb threats;
  threats.add_report(confluence, intel::ThreatCategory::kMalware);

  auto views = synthetic_views();
  // Add one more incorrect answer to a private address.
  R2View priv;
  priv.has_question = true;
  priv.form = AnswerForm::kIp;
  priv.answer_ip = net::IPv4Addr(192, 168, 1, 1);
  views.push_back(priv);

  const auto top = top_incorrect_ips(views, 10, orgs, threats);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].addr, confluence);
  EXPECT_EQ(top[0].count, 2u);
  EXPECT_EQ(top[0].org, "Confluence Network Inc");
  EXPECT_EQ(top[0].reported, 'Y');
  EXPECT_EQ(top[1].org, "private network");
  EXPECT_EQ(top[1].reported, '-');
}

TEST(Malicious, CategoriesAndFlagsAndRcode) {
  intel::ThreatDb threats;
  threats.add_report(*net::IPv4Addr::parse("208.91.197.91"),
                     intel::ThreatCategory::kMalware);
  const auto views = synthetic_views();
  const MaliciousSummary s = analyze_malicious(views, threats);
  EXPECT_EQ(s.total_r2, 2u);
  EXPECT_EQ(s.total_ips, 1u);
  EXPECT_EQ(s.categories[0].r2, 2u);  // malware is category 0
  EXPECT_EQ(s.ra0, 2u);
  EXPECT_EQ(s.aa1, 2u);
  EXPECT_EQ(s.rcode_noerror, 2u);
  EXPECT_EQ(s.malicious_views.size(), 2u);
}

TEST(Malicious, CorrectAnswersNeverMalicious) {
  intel::ThreatDb threats;
  // Report the *correct* answers' address: must still not count, since the
  // analysis only validates incorrect answers.
  threats.add_report(net::IPv4Addr(50, 1, 1, 0),
                     intel::ThreatCategory::kMalware);
  const auto views = synthetic_views();
  const MaliciousSummary s = analyze_malicious(views, threats);
  EXPECT_EQ(s.total_r2, 0u);
}

TEST(Geo, CountsByResolverCountry) {
  intel::GeoDb geo;
  geo.add_range(net::IPv4Addr(99, 0, 0, 0), net::IPv4Addr(99, 0, 0, 0), "US");
  geo.add_range(net::IPv4Addr(99, 0, 0, 1), net::IPv4Addr(99, 0, 0, 1), "IN");
  geo.build();
  intel::ThreatDb threats;
  threats.add_report(*net::IPv4Addr::parse("208.91.197.91"),
                     intel::ThreatCategory::kMalware);
  const auto views = synthetic_views();
  const MaliciousSummary mal = analyze_malicious(views, threats);
  const GeoSummary g = malicious_by_country(mal.malicious_views, geo);
  EXPECT_EQ(g.total, 2u);
  EXPECT_EQ(g.country_count(), 2u);
  EXPECT_EQ(g.countries[0].r2, 1u);
}

TEST(EmptyQuestion, SubAnalysis) {
  intel::OrgDb orgs;
  orgs.build();
  std::vector<R2View> views;
  {
    R2View v;  // no question, private answer, RA=1
    v.has_question = false;
    v.ra = true;
    v.form = AnswerForm::kIp;
    v.answer_ip = net::IPv4Addr(192, 168, 0, 1);
    views.push_back(v);
  }
  {
    R2View v;  // no question, no answer, servfail
    v.has_question = false;
    v.rcode = dns::Rcode::kServFail;
    views.push_back(v);
  }
  {
    R2View v;  // question present: excluded from this analysis
    v.has_question = true;
    views.push_back(v);
  }
  const EmptyQuestionSummary s = analyze_empty_question(views, orgs);
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.with_answer, 1u);
  EXPECT_EQ(s.private_answers, 1u);
  EXPECT_EQ(s.correct, 0u);
  EXPECT_EQ(s.ra1, 1u);
  EXPECT_EQ(s.rcode[static_cast<std::size_t>(dns::Rcode::kServFail)], 1u);
}

TEST(PrivateRedirects, CountsAndClassifiesPrivateSpace) {
  auto views = synthetic_views();
  R2View cpe;
  cpe.has_question = true;
  cpe.form = AnswerForm::kIp;
  cpe.answer_ip = net::IPv4Addr(192, 168, 1, 1);
  views.push_back(cpe);
  cpe.answer_ip = net::IPv4Addr(192, 168, 1, 1);  // duplicate target
  views.push_back(cpe);
  cpe.answer_ip = net::IPv4Addr(100, 64, 7, 7);   // carrier-grade NAT
  views.push_back(cpe);

  const PrivateRedirectSummary s = analyze_private_redirects(views);
  EXPECT_EQ(s.r2, 3u);
  EXPECT_EQ(s.unique_ips, 2u);
  EXPECT_EQ(s.rfc1918, 2u);
  EXPECT_EQ(s.cgn, 1u);
  EXPECT_NEAR(s.share_of_incorrect(7), 42.86, 0.1);
}

TEST(PrivateRedirects, PublicWrongAnswersExcluded) {
  const auto views = synthetic_views();  // wrong answers all public
  const PrivateRedirectSummary s = analyze_private_redirects(views);
  EXPECT_EQ(s.r2, 0u);
  EXPECT_EQ(s.share_of_incorrect(0), 0.0);
}

// ---- Streaming partial tables --------------------------------------------------------

/// Every paper table rendered into one comparable string (field-complete,
/// unlike the summary CSV: exemplars, top-K attribution and uniques included).
std::string rendered(const ScanAnalysis& a) {
  std::string s;
  s += render_answer_table({{"t", a.answers}});
  s += render_flag_table({{"t", a.ra}}, "RA");
  s += render_flag_table({{"t", a.aa}}, "AA");
  s += render_rcode_table({{"t", a.rcodes}});
  s += render_incorrect_table({{"t", a.incorrect}});
  s += render_top10_table(a.top10);
  s += render_malicious_table({{"t", a.malicious}});
  s += render_malicious_flags_table({{"t", a.malicious}});
  s += render_geo_summary(a.geo);
  s += render_empty_question_summary(a.empty_question);
  return s;
}

/// Synthetic views in canonical order (the stable resolver-address sort the
/// pipeline applies before the post-hoc pass; the streaming exemplar rule
/// assumes it — see streaming.h).
std::vector<R2View> canonical_views() {
  auto views = synthetic_views();
  std::stable_sort(views.begin(), views.end(),
                   [](const R2View& a, const R2View& b) {
                     return a.resolver.value() < b.resolver.value();
                   });
  return views;
}

struct StreamingIntel {
  intel::ThreatDb threats;
  intel::GeoDb geo;
  intel::OrgDb orgs;
  StreamingIntel() {
    threats.add_report(*net::IPv4Addr::parse("208.91.197.91"),
                       intel::ThreatCategory::kMalware);
    geo.add_range(net::IPv4Addr(99, 0, 0, 0), net::IPv4Addr(99, 0, 0, 0),
                  "US");
    geo.add_range(net::IPv4Addr(99, 0, 0, 1), net::IPv4Addr(99, 0, 0, 1),
                  "IN");
    geo.build();
    orgs.add_range(*net::IPv4Addr::parse("208.91.197.91"),
                   *net::IPv4Addr::parse("208.91.197.91"),
                   "Confluence Network Inc");
    orgs.build();
  }
};

TEST(StreamingTables, ObserveThenFinalizeMatchesAnalyzeScan) {
  const StreamingIntel intel;
  const auto views = canonical_views();
  const ScanAnalysis posthoc =
      analyze_scan(views, intel.threats, intel.geo, intel.orgs);

  PartialTables t;
  for (const R2View& v : views)
    t.observe(v, intel.threats, intel.geo, intel.orgs);
  const ScanAnalysis streamed = t.finalize(intel.orgs, intel.threats);

  EXPECT_EQ(rendered(streamed), rendered(posthoc));
  EXPECT_EQ(t.r2_total, views.size());
  EXPECT_EQ(t.digest, behavior_digest(views));
  // The one intentional divergence: the streamed result never retains the
  // malicious views themselves (their only consumer, the geo table, is
  // streamed directly).
  EXPECT_TRUE(streamed.malicious.malicious_views.empty());
  EXPECT_EQ(posthoc.malicious.malicious_views.size(),
            posthoc.malicious.total_r2);
}

TEST(StreamingTables, ShardSplitAndMergeIsLayoutInvariant) {
  const StreamingIntel intel;
  const auto views = canonical_views();

  // One accumulator is the reference; every contiguous split of the same
  // stream, merged in shard order, must reproduce it exactly.
  PartialTables ref;
  for (const R2View& v : views)
    ref.observe(v, intel.threats, intel.geo, intel.orgs);
  const std::string ref_rendered =
      rendered(ref.finalize(intel.orgs, intel.threats));

  for (const std::size_t shards : {2u, 3u, 5u}) {
    std::vector<PartialTables> parts(shards);
    for (std::size_t i = 0; i < views.size(); ++i)
      parts[i * shards / views.size()].observe(views[i], intel.threats,
                                               intel.geo, intel.orgs);
    PartialTables merged = std::move(parts[0]);
    for (std::size_t s = 1; s < shards; ++s) merged += parts[s];

    EXPECT_EQ(rendered(merged.finalize(intel.orgs, intel.threats)),
              ref_rendered)
        << shards << " shards";
    EXPECT_EQ(merged.digest, ref.digest) << shards << " shards";
    EXPECT_EQ(merged.r2_total, ref.r2_total) << shards << " shards";
  }
}

TEST(StreamingTables, ExemplarKeepsCanonicalFirstAcrossMergeOrder) {
  // Two shards observe the same wrong IP at different resolvers; whichever
  // side of the merge holds the smaller resolver address must win, because
  // canonical view order sorts by resolver.
  PartialTables low, high;
  R2View v;
  v.has_question = true;
  v.form = AnswerForm::kIp;
  v.answer_ip = net::IPv4Addr(1, 2, 3, 4);
  const intel::ThreatDb threats;
  intel::GeoDb geo;
  geo.build();
  intel::OrgDb orgs;
  orgs.build();

  v.resolver = net::IPv4Addr(10, 0, 0, 1);
  v.answer_ip = net::IPv4Addr(5, 5, 5, 5);
  low.observe(v, threats, geo, orgs);
  v.resolver = net::IPv4Addr(200, 0, 0, 1);
  v.answer_ip = net::IPv4Addr(6, 6, 6, 6);
  high.observe(v, threats, geo, orgs);

  PartialTables a = low;
  a += high;
  PartialTables b = high;
  b += low;
  EXPECT_EQ(a.ip_example.ip, net::IPv4Addr(5, 5, 5, 5).value());
  EXPECT_EQ(b.ip_example.ip, a.ip_example.ip)
      << "merge order must not change the canonical exemplar";
}

TEST(StreamingTables, EmptyTextNeverFillsAnExampleSlot) {
  // SOA/MX/AAAA answers classify as kString with empty text; the post-hoc
  // example is the first *non-empty* text in canonical order, so an earlier
  // empty one must not claim the slot.
  const intel::ThreatDb threats;
  intel::GeoDb geo;
  geo.build();
  intel::OrgDb orgs;
  orgs.build();

  std::vector<R2View> views(2);
  views[0].has_question = true;
  views[0].resolver = net::IPv4Addr(1, 1, 1, 1);
  views[0].form = AnswerForm::kString;  // empty answer_text
  views[1].has_question = true;
  views[1].resolver = net::IPv4Addr(2, 2, 2, 2);
  views[1].form = AnswerForm::kString;
  views[1].answer_text = "wild";

  PartialTables t;
  for (const R2View& v : views) t.observe(v, threats, geo, orgs);
  const ScanAnalysis streamed = t.finalize(orgs, threats);
  const ScanAnalysis posthoc = analyze_scan(views, threats, geo, orgs);
  EXPECT_EQ(streamed.incorrect.str.example, "wild");
  EXPECT_EQ(streamed.incorrect.str.example, posthoc.incorrect.str.example);
  EXPECT_EQ(streamed.incorrect.str.unique, posthoc.incorrect.str.unique);
}

// ---- FlowGrouper --------------------------------------------------------------------

TEST(FlowGrouper, DetectsFabricationWithoutRecursion) {
  FlowGrouper grouper(scheme());
  const auto q1 = scheme().qname({0, 1});
  const auto q2 = scheme().qname({0, 2});
  grouper.add_probe(q1, net::IPv4Addr(1, 1, 1, 1));
  grouper.add_probe(q2, net::IPv4Addr(2, 2, 2, 2));

  // Flow 1: honest — auth saw the recursion.
  net::CapturedPacket pkt;
  pkt.payload = dns::encode(dns::make_query(5, q1));
  grouper.add_auth_packet(pkt, /*inbound=*/true);
  pkt.payload = dns::encode(dns::make_a_response(
      dns::make_query(5, q1), scheme().ground_truth({0, 1})));
  grouper.add_auth_packet(pkt, /*inbound=*/false);
  R2View honest;
  honest.has_question = true;
  honest.form = AnswerForm::kIp;
  honest.correct = true;
  grouper.add_r2(honest, q1);

  // Flow 2: manipulated — an answer appears with zero auth contact.
  R2View fake;
  fake.has_question = true;
  fake.form = AnswerForm::kIp;
  fake.answer_ip = net::IPv4Addr(208, 91, 197, 91);
  grouper.add_r2(fake, q2);

  const auto suspicious = grouper.answered_without_recursion();
  ASSERT_EQ(suspicious.size(), 1u);
  EXPECT_EQ(suspicious[0]->qname_key, q2.canonical_key());
  EXPECT_EQ(grouper.flows().at(q1.canonical_key()).q2_count, 1u);
  EXPECT_EQ(grouper.flows().at(q1.canonical_key()).r1_count, 1u);
}

// ---- Renderers (smoke: content present, no crashes) ----------------------------------

TEST(Report, RendersAllTables) {
  intel::ThreatDb threats;
  threats.add_report(*net::IPv4Addr::parse("208.91.197.91"),
                     intel::ThreatCategory::kMalware);
  intel::GeoDb geo;
  geo.build();
  intel::OrgDb orgs;
  orgs.build();
  const auto views = synthetic_views();
  const ScanAnalysis a = analyze_scan(views, threats, geo, orgs);

  EXPECT_NE(render_answer_table({{"2018", a.answers}}).find("Err(%)"),
            std::string::npos);
  EXPECT_NE(render_flag_table({{"2018", a.ra}}, "RA").find("RA0"),
            std::string::npos);
  EXPECT_NE(render_rcode_table({{"2018", a.rcodes}}).find("Refused"),
            std::string::npos);
  EXPECT_NE(render_incorrect_table({{"2018", a.incorrect}}).find("u.dcoin.co"),
            std::string::npos);
  EXPECT_NE(render_top10_table(a.top10).find("208.91.197.91"),
            std::string::npos);
  EXPECT_NE(render_malicious_table({{"2018", a.malicious}}).find("Malware"),
            std::string::npos);
  EXPECT_NE(render_malicious_flags_table({{"2018", a.malicious}}).find("RA0"),
            std::string::npos);
  EXPECT_NE(render_geo_summary(a.geo).find("countries"), std::string::npos);
  EXPECT_NE(render_empty_question_summary(a.empty_question).find("ServFail"),
            std::string::npos);
  EXPECT_EQ(a.r2_total, views.size());
}

}  // namespace
}  // namespace orp::analysis
