#include <gtest/gtest.h>

#include "authns/auth_server.h"
#include "dns/builder.h"

namespace orp::authns {
namespace {

class AuthServerTest : public ::testing::Test {
 protected:
  AuthServerTest()
      : net(loop, 3),
        scheme(dns::DnsName::must_parse("ucfsealresearch.net"), 100, 7),
        server(net, net::IPv4Addr(45, 76, 18, 21), scheme,
               net::SimTime::seconds(2.0)) {
    net.set_latency({net::SimTime::millis(1), net::SimTime::nanos(0)});
    net.bind(client, [this](const net::Datagram& d) {
      auto decoded = dns::decode(d.payload);
      ASSERT_TRUE(decoded.has_value());
      replies.push_back(*std::move(decoded));
    });
  }

  void query(const dns::DnsName& qname, dns::RRType type = dns::RRType::kA) {
    net.send(net::Datagram{client,
                           net::Endpoint{server.address(), net::kDnsPort},
                           dns::encode(dns::make_query(1, qname, type))});
    loop.run();
  }

  net::EventLoop loop;
  net::Network net;
  zone::SubdomainScheme scheme;
  AuthServer server;
  net::Endpoint client{net::IPv4Addr(9, 9, 9, 9), 5353};
  std::vector<dns::Message> replies;
};

TEST_F(AuthServerTest, AnswersProbeSubdomainAuthoritatively) {
  const zone::SubdomainId id{0, 42};
  query(scheme.qname(id));
  ASSERT_EQ(replies.size(), 1u);
  const dns::Message& r = replies[0];
  EXPECT_TRUE(r.header.flags.qr);
  EXPECT_TRUE(r.header.flags.aa);   // authoritative
  EXPECT_FALSE(r.header.flags.ra);  // recursion disabled, as configured
  ASSERT_TRUE(r.first_a_answer().has_value());
  EXPECT_EQ(*r.first_a_answer(), scheme.ground_truth(id));
  EXPECT_EQ(server.stats().answered, 1u);
}

TEST_F(AuthServerTest, AnyQueryAlsoAnswered) {
  query(scheme.qname({0, 1}), dns::RRType::kANY);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].has_answer());
}

TEST_F(AuthServerTest, NXDomainForUnloadedCluster) {
  query(scheme.qname({7, 3}));  // only cluster 0 is loaded
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kNXDomain);
  EXPECT_TRUE(replies[0].header.flags.aa);
  EXPECT_FALSE(replies[0].has_answer());
}

TEST_F(AuthServerTest, NXDomainForIndexBeyondClusterSize) {
  query(scheme.qname({0, 100}));  // cluster_size is 100 -> max index 99
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kNXDomain);
}

TEST_F(AuthServerTest, PreviousClusterStaysResident) {
  server.load_cluster(1, /*initial=*/true);
  query(scheme.qname({0, 5}));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].has_answer());
  server.load_cluster(2, /*initial=*/true);
  query(scheme.qname({0, 5}));
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].header.flags.rcode, dns::Rcode::kNXDomain);
}

TEST_F(AuthServerTest, RefusesOutOfZone) {
  query(dns::DnsName::must_parse("www.google.com"));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(server.stats().refused, 1u);
}

TEST_F(AuthServerTest, ServesApexNsWithGlueAddress) {
  query(dns::DnsName::must_parse("ns1.ucfsealresearch.net"));
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_TRUE(replies[0].first_a_answer().has_value());
  EXPECT_EQ(*replies[0].first_a_answer(), server.address());
}

TEST_F(AuthServerTest, ApexSoaAnswered) {
  query(dns::DnsName::must_parse("ucfsealresearch.net"), dns::RRType::kSOA);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].has_answer());
}

TEST_F(AuthServerTest, NoDataForApexMx) {
  query(dns::DnsName::must_parse("ucfsealresearch.net"), dns::RRType::kMX);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kNoError);
  EXPECT_FALSE(replies[0].has_answer());
}

TEST_F(AuthServerTest, FormErrForGarbagePayload) {
  net.send(net::Datagram{client,
                         net::Endpoint{server.address(), net::kDnsPort},
                         {0xAB, 0xCD, 0x01}});
  loop.run();
  // Header too short to even decode: server still tries to respond FORMERR.
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kFormErr);
}

TEST_F(AuthServerTest, ServFailDuringZoneReload) {
  loop.schedule_in(net::SimTime::seconds(1.0), [this] {
    server.load_cluster(1);  // opens a 2s busy window
    net.send(net::Datagram{client,
                           net::Endpoint{server.address(), net::kDnsPort},
                           dns::encode(dns::make_query(
                               7, scheme.qname({1, 0}), dns::RRType::kA))});
  });
  loop.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kServFail);
}

TEST_F(AuthServerTest, AfterReloadWindowServesNewCluster) {
  loop.schedule_in(net::SimTime::seconds(1.0),
                   [this] { server.load_cluster(1); });
  loop.schedule_in(net::SimTime::seconds(4.0), [this] {
    net.send(net::Datagram{client,
                           net::Endpoint{server.address(), net::kDnsPort},
                           dns::encode(dns::make_query(
                               7, scheme.qname({1, 0}), dns::RRType::kA))});
  });
  loop.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].has_answer());
}

TEST_F(AuthServerTest, CountsQueriesAndResponses) {
  query(scheme.qname({0, 1}));
  query(dns::DnsName::must_parse("other.org"));
  EXPECT_EQ(server.stats().queries_received, 2u);
  EXPECT_EQ(server.stats().responses_sent, 2u);
}

}  // namespace
}  // namespace orp::authns
