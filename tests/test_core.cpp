#include <gtest/gtest.h>

#include <numeric>

#include "core/contrast.h"
#include "core/ipf.h"
#include "core/paper_data.h"
#include "core/population.h"
#include "core/reconcile.h"

namespace orp::core {
namespace {

// ---- Paper data self-consistency ----------------------------------------------------

class PaperDataYears : public ::testing::TestWithParam<const PaperYear*> {};

TEST_P(PaperDataYears, TableThreePartsSumToR2) {
  const PaperYear& y = *GetParam();
  EXPECT_EQ(y.answers.without_answer + y.answers.with_answer(), y.answers.r2);
  EXPECT_EQ(y.answers.r2 + y.empty_question, y.r2);
}

TEST_P(PaperDataYears, TableFourIsConsistentWithTableThree) {
  const PaperYear& y = *GetParam();
  // Table IV is packet-exact against Table III in both years.
  EXPECT_EQ(y.ra.bit0.correct + y.ra.bit1.correct, y.answers.correct);
  EXPECT_EQ(y.ra.bit0.incorrect + y.ra.bit1.incorrect, y.answers.incorrect);
  EXPECT_EQ(y.ra.bit0.without_answer + y.ra.bit1.without_answer,
            y.answers.without_answer);
}

TEST_P(PaperDataYears, TableNineSumsToTotals) {
  const PaperYear& y = *GetParam();
  std::uint64_t ips = 0;
  std::uint64_t r2 = 0;
  for (const auto& c : y.categories) {
    ips += c.unique_ips;
    r2 += c.r2;
  }
  EXPECT_EQ(ips, y.malicious_ips);
  EXPECT_EQ(r2, y.malicious_r2);
}

TEST_P(PaperDataYears, TableTenSumsToMaliciousTotal) {
  const PaperYear& y = *GetParam();
  EXPECT_EQ(y.mal_ra0 + y.mal_ra1, y.malicious_r2);
  EXPECT_EQ(y.mal_aa0 + y.mal_aa1, y.malicious_r2);
}

TEST_P(PaperDataYears, CountryListSumsToMaliciousR2) {
  const PaperYear& y = *GetParam();
  std::uint64_t total = 0;
  for (const auto& c : y.countries) total += c.r2;
  EXPECT_EQ(total, y.malicious_r2);
}

TEST_P(PaperDataYears, TopTenTotalsMatchProse) {
  const PaperYear& y = *GetParam();
  std::uint64_t total = 0;
  for (const auto& e : y.top10) total += e.count;
  // 2013: 26,514 (§IV-C1); 2018: 50,669 (Table VIII).
  EXPECT_EQ(total, y.year == 2013 ? 26'514u : 50'669u);
  // Strictly decreasing ranking.
  for (std::size_t i = 1; i < y.top10.size(); ++i)
    EXPECT_LT(y.top10[i].count, y.top10[i - 1].count);
}

TEST_P(PaperDataYears, IncorrectFormsSumToTableThree) {
  const PaperYear& y = *GetParam();
  EXPECT_EQ(y.incorrect.ip.r2 + y.incorrect.url.r2 + y.incorrect.str.r2 +
                y.incorrect.na.r2,
            y.answers.incorrect);
}

INSTANTIATE_TEST_SUITE_P(BothYears, PaperDataYears,
                         ::testing::Values(&paper_2013(), &paper_2018()),
                         [](const auto& info) {
                           return std::to_string(info.param->year);
                         });

TEST(PaperData, KnownHeadlineNumbers) {
  EXPECT_EQ(paper_2018().q1, 3'702'258'432u);
  EXPECT_EQ(paper_2018().r2, 6'506'258u);
  EXPECT_EQ(paper_2013().r2, 16'660'123u);
  EXPECT_NEAR(paper_2018().answers.err_percent(), 3.879, 0.001);
  EXPECT_NEAR(paper_2013().answers.err_percent(), 1.029, 0.001);
}

// ---- Reconciliation -------------------------------------------------------------------

TEST(Reconcile, TableFiveMovesTenPackets2018) {
  analysis::FlagTable aa = paper_2018().aa;
  const auto moved = reconcile_flag_table(aa, paper_2018().answers);
  EXPECT_EQ(moved, 20u);  // two columns off by 10 each
  EXPECT_EQ(aa.bit0.correct + aa.bit1.correct, paper_2018().answers.correct);
  EXPECT_EQ(aa.bit0.without_answer + aa.bit1.without_answer,
            paper_2018().answers.without_answer);
}

TEST(Reconcile, ConsistentTableMovesNothing) {
  analysis::FlagTable ra = paper_2018().ra;
  EXPECT_EQ(reconcile_flag_table(ra, paper_2018().answers), 0u);
}

TEST(Reconcile, RcodeTableSumsAfterwards) {
  for (const PaperYear* y : {&paper_2013(), &paper_2018()}) {
    analysis::RcodeTable rc = y->rcodes;
    reconcile_rcode_table(rc, y->answers);
    std::uint64_t with = 0;
    std::uint64_t without = 0;
    for (const auto& row : rc.rows) {
      with += row.with_answer;
      without += row.without_answer;
    }
    EXPECT_EQ(with, y->answers.with_answer()) << y->year;
    EXPECT_EQ(without, y->answers.without_answer) << y->year;
  }
}

// ---- IPF --------------------------------------------------------------------------------

CalibrationTargets targets_for(const PaperYear& y) {
  CalibrationTargets t;
  t.answers = y.answers;
  t.ra = y.ra;
  t.aa = y.aa;
  t.rcodes = y.rcodes;
  reconcile_flag_table(t.ra, t.answers);
  reconcile_flag_table(t.aa, t.answers);
  reconcile_rcode_table(t.rcodes, t.answers);
  t.mal_ra0 = y.mal_ra0;
  t.mal_ra1 = y.mal_ra1;
  t.mal_aa0 = y.mal_aa0;
  t.mal_aa1 = y.mal_aa1;
  return t;
}

class IpfYears : public ::testing::TestWithParam<const PaperYear*> {};

TEST_P(IpfYears, ConvergesAndReproducesMargins) {
  const CalibrationTargets t = targets_for(*GetParam());
  const IpfResult result = calibrate_joint(t);
  EXPECT_LT(result.max_margin_error, 1e-8);
  EXPECT_EQ(result.total, t.answers.r2);

  // Integerized margins must match the reconciled targets within the
  // rounding budget of the integerization (a few packets per margin cell).
  const auto ra = result.ra_margin();
  EXPECT_NEAR(static_cast<double>(ra.bit0.correct),
              static_cast<double>(t.ra.bit0.correct), 4.0);
  EXPECT_NEAR(static_cast<double>(ra.bit1.incorrect),
              static_cast<double>(t.ra.bit1.incorrect), 4.0);
  EXPECT_NEAR(static_cast<double>(ra.bit0.without_answer),
              static_cast<double>(t.ra.bit0.without_answer), 4.0);

  const auto aa = result.aa_margin();
  EXPECT_NEAR(static_cast<double>(aa.bit1.incorrect),
              static_cast<double>(t.aa.bit1.incorrect), 4.0);

  const auto rc = result.rcode_margin();
  for (std::size_t i = 0; i < rc.rows.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(rc.rows[i].with_answer),
                static_cast<double>(t.rcodes.rows[i].with_answer), 4.0)
        << "rcode " << i;
    EXPECT_NEAR(static_cast<double>(rc.rows[i].without_answer),
                static_cast<double>(t.rcodes.rows[i].without_answer), 4.0)
        << "rcode " << i;
  }
}

TEST_P(IpfYears, MaliciousCellsAllNoError) {
  const IpfResult result = calibrate_joint(targets_for(*GetParam()));
  std::uint64_t malicious = 0;
  std::uint64_t mal_ra0 = 0;
  for (const JointCell& c : result.cells) {
    if (c.cls != AnsClass::kIncorrectMalicious) continue;
    malicious += c.count;
    if (!c.ra) mal_ra0 += c.count;
    EXPECT_EQ(c.rcode, dns::Rcode::kNoError);
  }
  EXPECT_NEAR(static_cast<double>(malicious),
              static_cast<double>(GetParam()->malicious_r2), 4.0);
  EXPECT_NEAR(static_cast<double>(mal_ra0),
              static_cast<double>(GetParam()->mal_ra0), 4.0);
}

INSTANTIATE_TEST_SUITE_P(BothYears, IpfYears,
                         ::testing::Values(&paper_2013(), &paper_2018()),
                         [](const auto& info) {
                           return std::to_string(info.param->year);
                         });

TEST(Ipf, RareCellsSurviveIntegerization) {
  const IpfResult result = calibrate_joint(targets_for(paper_2018()));
  const auto rc = result.rcode_margin();
  // The 10 NXDomain-with-answer packets and 23 FormErr-with-answer packets
  // must not be rounded away.
  EXPECT_GT(rc.row(dns::Rcode::kNXDomain).with_answer, 0u);
  EXPECT_GT(rc.row(dns::Rcode::kFormErr).with_answer, 0u);
}

// ---- Population -----------------------------------------------------------------------

class PopulationYears : public ::testing::TestWithParam<const PaperYear*> {};

TEST_P(PopulationYears, HostCountMatchesScaledR2) {
  const PaperYear& y = *GetParam();
  const std::uint64_t scale = 1024;
  const PopulationSpec spec = build_population(y, scale, 42);
  const std::uint64_t expected_q = (y.answers.r2 + scale / 2) / scale;
  const std::uint64_t expected_eq =
      y.empty_question == 0
          ? 0
          : std::max<std::uint64_t>(1, (y.empty_question + scale / 2) / scale);
  EXPECT_EQ(spec.hosts.size(), expected_q + expected_eq);
}

TEST_P(PopulationYears, BehaviorMixMatchesScaledMargins) {
  const PaperYear& y = *GetParam();
  const std::uint64_t scale = 512;
  const PopulationSpec spec = build_population(y, scale, 7);

  std::uint64_t correct = 0;
  std::uint64_t none = 0;
  std::uint64_t fixed_ip = 0;
  std::uint64_t url = 0;
  std::uint64_t garbage = 0;
  std::uint64_t undecodable = 0;
  std::uint64_t eq = 0;
  for (const HostSpec& h : spec.hosts) {
    if (h.profile.omit_question) {
      ++eq;
      continue;
    }
    switch (h.profile.answer) {
      case resolver::AnswerMode::kRecursive: ++correct; break;
      case resolver::AnswerMode::kNone: ++none; break;
      case resolver::AnswerMode::kFixedIp: ++fixed_ip; break;
      case resolver::AnswerMode::kUrl: ++url; break;
      case resolver::AnswerMode::kGarbageString: ++garbage; break;
      case resolver::AnswerMode::kUndecodable: ++undecodable; break;
    }
  }
  const double s = static_cast<double>(scale);
  // keep_nonzero apportionment floors every rare joint cell at 1 host, so
  // large classes can drift by a host per rare cell at coarse scales.
  EXPECT_NEAR(static_cast<double>(correct),
              static_cast<double>(y.answers.correct) / s, 12.0);
  EXPECT_NEAR(static_cast<double>(none),
              static_cast<double>(y.answers.without_answer) / s, 12.0);
  EXPECT_NEAR(static_cast<double>(fixed_ip),
              static_cast<double>(y.incorrect.ip.r2) / s, 4.0);
  EXPECT_NEAR(static_cast<double>(url),
              static_cast<double>(y.incorrect.url.r2) / s, 2.0);
  EXPECT_NEAR(static_cast<double>(garbage),
              static_cast<double>(y.incorrect.str.r2) / s, 2.0);
  EXPECT_NEAR(static_cast<double>(undecodable),
              static_cast<double>(y.incorrect.na.r2) / s, 2.0);
  if (y.empty_question > 0) {
    EXPECT_GE(eq, 1u);
  }
}

TEST_P(PopulationYears, RecursionFanMeanMatchesQ2Ratio) {
  const PaperYear& y = *GetParam();
  const PopulationSpec spec = build_population(y, 512, 7);
  std::uint64_t fans = 0;
  std::uint64_t correct_hosts = 0;
  for (const HostSpec& h : spec.hosts) {
    if (h.profile.answer != resolver::AnswerMode::kRecursive ||
        h.profile.omit_question)
      continue;
    ++correct_hosts;
    fans += static_cast<std::uint64_t>(h.profile.backend_fan);
  }
  ASSERT_GT(correct_hosts, 0u);
  const double mean = static_cast<double>(fans) /
                      static_cast<double>(correct_hosts);
  EXPECT_NEAR(mean, spec.q2_fan_mean, 0.05);
  EXPECT_NEAR(mean,
              static_cast<double>(y.q2_r1) /
                  static_cast<double>(y.answers.correct),
              0.05);
}

TEST_P(PopulationYears, MaliciousHostsCarryCountriesAndThreatEntries) {
  const PaperYear& y = *GetParam();
  const PopulationSpec spec = build_population(y, 512, 7);
  intel::ThreatDb threats;
  for (const auto& e : spec.threat_entries)
    threats.add_report(e.addr, e.category, e.source, e.reports);

  std::uint64_t malicious_hosts = 0;
  for (const HostSpec& h : spec.hosts) {
    if (h.country.empty()) continue;
    ++malicious_hosts;
    EXPECT_EQ(h.profile.answer, resolver::AnswerMode::kFixedIp);
    EXPECT_TRUE(threats.is_reported(h.profile.fixed_answer));
    EXPECT_EQ(h.profile.rcode, dns::Rcode::kNoError);  // Table X finding
  }
  EXPECT_NEAR(static_cast<double>(malicious_hosts),
              static_cast<double>(y.malicious_r2) / 512.0, 3.0);
}

TEST_P(PopulationYears, VersionBannersFollowTheProfileTaxonomy) {
  const PopulationSpec spec = build_population(*GetParam(), 1024, 7);
  std::uint64_t honest = 0, honest_disclosing = 0;
  std::uint64_t manip = 0, manip_disclosing = 0;
  std::uint64_t validators = 0;
  for (const HostSpec& h : spec.hosts) {
    if (h.profile.omit_question) continue;
    if (h.profile.answer == resolver::AnswerMode::kRecursive) {
      ++honest;
      if (!h.profile.version.empty()) ++honest_disclosing;
      if (h.profile.dnssec_ok) ++validators;
    } else if (h.profile.answer == resolver::AnswerMode::kFixedIp) {
      ++manip;
      if (!h.profile.version.empty()) ++manip_disclosing;
    }
  }
  ASSERT_GT(honest, 100u);
  // Honest recursives mostly disclose a banner; manipulators mostly hide.
  EXPECT_GT(honest_disclosing * 100, honest * 75);
  EXPECT_LT(manip_disclosing * 100, manip * 40);
  // Validator share ~12% of honest recursives.
  const double share = static_cast<double>(validators) /
                       static_cast<double>(honest);
  EXPECT_GT(share, 0.06);
  EXPECT_LT(share, 0.20);
}

TEST_P(PopulationYears, DeterministicForSeed) {
  const PaperYear& y = *GetParam();
  const PopulationSpec a = build_population(y, 2048, 9);
  const PopulationSpec b = build_population(y, 2048, 9);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].profile.answer, b.hosts[i].profile.answer);
    EXPECT_EQ(a.hosts[i].profile.fixed_answer, b.hosts[i].profile.fixed_answer);
    EXPECT_EQ(a.hosts[i].country, b.hosts[i].country);
  }
}

INSTANTIATE_TEST_SUITE_P(BothYears, PopulationYears,
                         ::testing::Values(&paper_2013(), &paper_2018()),
                         [](const auto& info) {
                           return std::to_string(info.param->year);
                         });

TEST(Population, ScaleOneKeepsFullCounts) {
  // Full-scale population is huge; just validate the arithmetic paths via
  // the spec's scan parameters rather than materializing hosts.
  const PopulationSpec spec = build_population(paper_2018(), 8192, 1);
  EXPECT_EQ(spec.scale, 8192u);
  EXPECT_NEAR(spec.rate_pps, 100000.0 / 8192.0, 1e-9);
  EXPECT_EQ(spec.cluster_size, 5'000'000u / 8192u);
  EXPECT_GT(spec.raw_steps, 500'000u);
  EXPECT_LT(spec.raw_steps, 530'000u);
}

// ---- Contrast ---------------------------------------------------------------------------

TEST(Contrast, PaperClaimsHoldOnPaperNumbers) {
  // Feed the contrast the paper's own numbers via synthetic analyses.
  analysis::ScanAnalysis a13;
  a13.r2_total = paper_2013().r2;
  a13.answers = paper_2013().answers;
  a13.ra = paper_2013().ra;
  a13.malicious.total_r2 = paper_2013().malicious_r2;
  a13.malicious.total_ips = paper_2013().malicious_ips;

  analysis::ScanAnalysis a18;
  a18.r2_total = paper_2018().r2;
  a18.answers = paper_2018().answers;
  a18.ra = paper_2018().ra;
  a18.malicious.total_r2 = paper_2018().malicious_r2;
  a18.malicious.total_ips = paper_2018().malicious_ips;

  const TemporalContrast c = contrast(a13, a18);
  EXPECT_TRUE(c.open_resolvers_decreased());
  EXPECT_TRUE(c.incorrect_roughly_stable());
  EXPECT_TRUE(c.error_rate_increased());
  EXPECT_TRUE(c.malicious_increased());

  const auto est13 = estimate_open_resolvers(a13);
  EXPECT_EQ(est13.strict, 11'505'481u);     // §IV-B1 "about 11.5 million"
  EXPECT_EQ(est13.ra_flag_only, 12'270'335u);
  EXPECT_EQ(est13.correct_only, 11'671'589u);
  const auto est18 = estimate_open_resolvers(a18);
  EXPECT_EQ(est18.strict, 2'748'568u);      // "about 2.74 million"
  EXPECT_EQ(est18.ra_flag_only, 3'002'183u);

  const std::string text = render_contrast(c, 2013, 2018);
  EXPECT_NE(text.find("malicious"), std::string::npos);
  EXPECT_NE(text.find("decrease=yes"), std::string::npos);
}

}  // namespace
}  // namespace orp::core
