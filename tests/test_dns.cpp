#include <gtest/gtest.h>

#include <algorithm>

#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/truncate.h"
#include "dns/message.h"
#include "dns/name.h"
#include "dns/types.h"

namespace orp::dns {
namespace {

// ---- DnsName -------------------------------------------------------------------

TEST(DnsName, ParseAndFormat) {
  const auto n = DnsName::parse("www.Example.COM");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->label_count(), 3u);
  EXPECT_EQ(n->to_string(), "www.Example.COM");
  EXPECT_EQ(n->canonical_key(), "www.example.com");
}

TEST(DnsName, TrailingDotAccepted) {
  EXPECT_EQ(DnsName::must_parse("example.com.").label_count(), 2u);
}

TEST(DnsName, RootForms) {
  EXPECT_TRUE(DnsName::must_parse(".").is_root());
  EXPECT_TRUE(DnsName().is_root());
  EXPECT_EQ(DnsName().to_string(), ".");
  EXPECT_EQ(DnsName().wire_length(), 1u);
}

TEST(DnsName, RejectsEmptyLabels) {
  EXPECT_FALSE(DnsName::parse("a..b").has_value());
  EXPECT_FALSE(DnsName::parse(".a").has_value());
}

TEST(DnsName, CaseInsensitiveEquality) {
  EXPECT_EQ(DnsName::must_parse("A.B.c"), DnsName::must_parse("a.b.C"));
  EXPECT_FALSE(DnsName::must_parse("a.b") == DnsName::must_parse("a.c"));
}

TEST(DnsName, SubdomainRelation) {
  const auto sld = DnsName::must_parse("ucfsealresearch.net");
  EXPECT_TRUE(DnsName::must_parse("or000.0000001.ucfsealresearch.net")
                  .is_subdomain_of(sld));
  EXPECT_TRUE(sld.is_subdomain_of(sld));
  EXPECT_TRUE(sld.is_subdomain_of(DnsName()));  // everything under root
  EXPECT_FALSE(DnsName::must_parse("example.net").is_subdomain_of(sld));
  EXPECT_FALSE(DnsName::must_parse("net").is_subdomain_of(sld));
  EXPECT_FALSE(DnsName::must_parse("evilucfsealresearch.net")
                   .is_subdomain_of(sld));
}

TEST(DnsName, ParentAndChild) {
  const auto n = DnsName::must_parse("a.b.c");
  EXPECT_EQ(n.parent().to_string(), "b.c");
  EXPECT_EQ(n.parent(2).to_string(), "c");
  EXPECT_TRUE(n.parent(3).is_root());
  EXPECT_TRUE(n.parent(9).is_root());
  EXPECT_EQ(n.child("x").to_string(), "x.a.b.c");
}

class LabelLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LabelLengthSweep, SixtyThreeIsTheLimit) {
  const std::string label(GetParam(), 'a');
  const auto parsed = DnsName::parse(label + ".com");
  if (GetParam() >= 1 && GetParam() <= kMaxLabelLength)
    EXPECT_TRUE(parsed.has_value());
  else
    EXPECT_FALSE(parsed.has_value());
}

INSTANTIATE_TEST_SUITE_P(Lengths, LabelLengthSweep,
                         ::testing::Values(1, 2, 32, 62, 63, 64, 100));

TEST(DnsName, TotalLengthLimit) {
  // Four 62-char labels plus dots: wire length 4*63+1 = 253 -> ok.
  const std::string l62(62, 'x');
  const std::string ok = l62 + "." + l62 + "." + l62 + "." + l62;
  EXPECT_TRUE(DnsName::parse(ok).has_value());
  // Adding one more label of length 2 exceeds 255.
  EXPECT_FALSE(DnsName::parse(ok + ".ab").has_value());
}

// ---- Flags ----------------------------------------------------------------------

TEST(Flags, PackUnpackRoundTripAllBitPatterns) {
  // Exhaustive over the whole 16-bit flags word: unpack -> pack must be the
  // identity on every field we model (z keeps only its defined bit).
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const Flags f = Flags::unpack(static_cast<std::uint16_t>(raw));
    const Flags g = Flags::unpack(f.pack());
    EXPECT_EQ(f, g) << raw;
  }
}

TEST(Flags, KnownEncodings) {
  Flags f;
  f.qr = true;
  f.ra = true;
  f.rd = true;
  EXPECT_EQ(f.pack(), 0x8180);  // standard answer header
  f.aa = true;
  EXPECT_EQ(f.pack(), 0x8580);
  f.rcode = Rcode::kNXDomain;
  EXPECT_EQ(f.pack(), 0x8583);
}

// ---- Types -----------------------------------------------------------------------

TEST(Types, RcodeNames) {
  EXPECT_EQ(to_string(Rcode::kNoError), "NoError");
  EXPECT_EQ(to_string(Rcode::kRefused), "Refused");
  EXPECT_EQ(to_string(Rcode::kNotAuth), "NotAuth");
  Rcode rc;
  EXPECT_TRUE(rcode_from_string("ServFail", rc));
  EXPECT_EQ(rc, Rcode::kServFail);
  EXPECT_FALSE(rcode_from_string("NotARcode", rc));
}

TEST(Types, RRTypeNames) {
  EXPECT_EQ(to_string(RRType::kA), "A");
  EXPECT_EQ(to_string(RRType::kANY), "ANY");
  EXPECT_EQ(to_string(RRType::kOPT), "OPT");
}

// ---- Codec round trips -------------------------------------------------------------

Message sample_message() {
  Message m = make_query(0x1234, DnsName::must_parse("or001.0000042.ucfsealresearch.net"));
  m.header.flags.qr = true;
  m.header.flags.ra = true;
  m.answers.push_back(ResourceRecord{
      m.questions[0].qname, RRType::kA, RRClass::kIN, 300,
      ARdata{net::IPv4Addr(93, 184, 216, 34)}});
  m.authority.push_back(ResourceRecord{
      DnsName::must_parse("ucfsealresearch.net"), RRType::kNS, RRClass::kIN,
      172800, NameRdata{DnsName::must_parse("ns1.ucfsealresearch.net")}});
  m.additional.push_back(ResourceRecord{
      DnsName::must_parse("ns1.ucfsealresearch.net"), RRType::kA,
      RRClass::kIN, 172800, ARdata{net::IPv4Addr(45, 76, 18, 21)}});
  return m;
}

void expect_equal(const Message& a, const Message& b) {
  EXPECT_EQ(a.header.id, b.header.id);
  EXPECT_EQ(a.header.flags, b.header.flags);
  ASSERT_EQ(a.questions.size(), b.questions.size());
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].qname, b.questions[i].qname);
    EXPECT_EQ(a.questions[i].qtype, b.questions[i].qtype);
  }
  ASSERT_EQ(a.answers.size(), b.answers.size());
  ASSERT_EQ(a.authority.size(), b.authority.size());
  ASSERT_EQ(a.additional.size(), b.additional.size());
  auto rr_equal = [](const ResourceRecord& x, const ResourceRecord& y) {
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.ttl, y.ttl);
    EXPECT_EQ(to_string(x), to_string(y));
  };
  for (std::size_t i = 0; i < a.answers.size(); ++i)
    rr_equal(a.answers[i], b.answers[i]);
  for (std::size_t i = 0; i < a.authority.size(); ++i)
    rr_equal(a.authority[i], b.authority[i]);
  for (std::size_t i = 0; i < a.additional.size(); ++i)
    rr_equal(a.additional[i], b.additional[i]);
}

TEST(Codec, RoundTripCompressed) {
  const Message m = sample_message();
  const auto wire = encode(m, {.compress = true});
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value()) << to_string(decoded.error());
  expect_equal(m, *decoded);
}

TEST(Codec, RoundTripUncompressed) {
  const Message m = sample_message();
  const auto wire = encode(m, {.compress = false});
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  expect_equal(m, *decoded);
}

TEST(Codec, CompressionShrinksRepeatedNames) {
  const Message m = sample_message();
  EXPECT_LT(encode(m, {.compress = true}).size(),
            encode(m, {.compress = false}).size());
}

// Regression: while a name is being written, its earlier labels are recorded
// as compression candidates before the name has a terminator. A name whose
// remaining suffix matches those earlier labels (a.a.example, b.a.b.a) used
// to walk the matcher off the write frontier — never match against the
// unfinished current name, and never emit a self-referential pointer.
TEST(Codec, SelfSuffixNamesNeverSelfCompress) {
  for (const char* s : {"a.a", "a.a.example", "example.example.com",
                        "a.b.a.b", "aa.aa", "x.x.x.x.x"}) {
    Message m = make_query(0x42, DnsName::must_parse(s));
    m.header.flags.qr = true;
    m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kA,
                                       RRClass::kIN, 60,
                                       ARdata{net::IPv4Addr(1, 2, 3, 4)}});
    const auto wire = encode(m, {.compress = true});
    const auto decoded = decode(wire);
    ASSERT_TRUE(decoded.has_value())
        << s << ": " << to_string(decoded.error());
    EXPECT_EQ(decoded->questions[0].qname, m.questions[0].qname) << s;
    EXPECT_EQ(decoded->answers[0].name, m.answers[0].name) << s;
  }
}

TEST(Codec, SelfSuffixNameDeterministicOnWarmBuffer) {
  // A warm EncodeBuffer holds stale bytes from the previous message past the
  // current write frontier. Encoding "a.a": the offset recorded for the whole
  // name (12) matches the remaining suffix "a" exactly, and the matcher's
  // walk lands on the frontier at offset 14 — where the *previous* message
  // (query for single-label "x") left a stale root byte. A frontier overrun
  // reads that 0x00, declares a match, and emits a pointer to the name's own
  // start — a compression loop every decoder rejects.
  Message m = make_query(0x42, DnsName::must_parse("a.a"));
  const auto cold = encode(m, {.compress = true});
  EncodeBuffer scratch;
  // Previous message: single-label qname "x" (root byte at offset 14) plus
  // an answer so the scratch capacity already covers the next encode and is
  // not reallocated away along with the stale bytes.
  Message prev = make_query(0x41, DnsName::must_parse("x"));
  prev.header.flags.qr = true;
  prev.answers.push_back(ResourceRecord{prev.questions[0].qname, RRType::kA,
                                        RRClass::kIN, 60,
                                        ARdata{net::IPv4Addr(1, 2, 3, 4)}});
  (void)encode_into(prev, scratch, {.compress = true});
  const auto warm = encode_into(m, scratch, {.compress = true});
  EXPECT_TRUE(std::equal(cold.begin(), cold.end(), warm.begin(), warm.end()));
  const auto decoded = decode(warm);
  ASSERT_TRUE(decoded.has_value()) << to_string(decoded.error());
  EXPECT_EQ(decoded->questions[0].qname, m.questions[0].qname);
}

struct RdataCase {
  const char* label;
  Rdata rdata;
  RRType type;
};

class RdataRoundTrip : public ::testing::TestWithParam<RdataCase> {};

TEST_P(RdataRoundTrip, EncodesAndDecodes) {
  Message m = make_query(7, DnsName::must_parse("x.example.net"));
  m.header.flags.qr = true;
  m.answers.push_back(ResourceRecord{m.questions[0].qname, GetParam().type,
                                     RRClass::kIN, 60, GetParam().rdata});
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(to_string(decoded->answers[0]), to_string(m.answers[0]));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RdataRoundTrip,
    ::testing::Values(
        RdataCase{"a", ARdata{net::IPv4Addr(8, 8, 8, 8)}, RRType::kA},
        RdataCase{"cname", NameRdata{DnsName::must_parse("u.dcoin.co")},
                  RRType::kCNAME},
        RdataCase{"ns", NameRdata{DnsName::must_parse("ns1.example.net")},
                  RRType::kNS},
        RdataCase{"ptr", NameRdata{DnsName::must_parse("host.example.net")},
                  RRType::kPTR},
        RdataCase{"soa",
                  SoaRdata{DnsName::must_parse("ns1.example.net"),
                           DnsName::must_parse("hostmaster.example.net"),
                           2018042601, 7200, 900, 1209600, 300},
                  RRType::kSOA},
        RdataCase{"mx", MxRdata{10, DnsName::must_parse("mail.example.net")},
                  RRType::kMX},
        RdataCase{"txt", TxtRdata{{"wild", "OK"}}, RRType::kTXT},
        RdataCase{"raw", RawRdata{99, {0xDE, 0xAD, 0xBE, 0xEF}},
                  static_cast<RRType>(99)}),
    [](const auto& info) { return info.param.label; });

// ---- Malformed input ---------------------------------------------------------------

TEST(Codec, TruncatedHeaderRejected) {
  const std::vector<std::uint8_t> wire{0x12, 0x34, 0x01};
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error(), DecodeError::kTruncatedHeader);
}

TEST(Codec, EmptyPayloadRejected) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).has_value());
}

TEST(Codec, LyingAncountDetected) {
  // The deviant-resolver trick: header claims one answer, none present.
  Message m = make_query(9, DnsName::must_parse("q.example.net"));
  m.header.flags.qr = true;
  m.header.qdcount = 1;
  m.header.ancount = 1;
  const auto wire = encode_raw_counts(m);
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.has_value());
  const PartialDecode partial = decode_partial(wire);
  EXPECT_EQ(partial.failed_at, DecodeStage::kAnswer);
  ASSERT_EQ(partial.message.questions.size(), 1u);  // question survived
}

TEST(Codec, ForwardCompressionPointerRejected) {
  // Header + a name that is a pointer to itself (offset 12).
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;  // qdcount = 1
  wire.push_back(0xC0);
  wire.push_back(12);  // pointer to its own first byte
  wire.push_back(0);
  wire.push_back(1);
  wire.push_back(0);
  wire.push_back(1);
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error(), DecodeError::kForwardPointer);
}

TEST(Codec, TruncatedNameRejected) {
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;        // qdcount = 1
  wire.push_back(30);  // label length 30, but no bytes follow
  wire.push_back('a');
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, BadRdataLengthRejected) {
  Message m = make_query(9, DnsName::must_parse("q.example.net"));
  m.header.flags.qr = true;
  m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kA,
                                     RRClass::kIN, 60,
                                     ARdata{net::IPv4Addr(1, 2, 3, 4)}});
  auto wire = encode(m);
  wire.resize(wire.size() - 2);  // chop the tail of the A rdata
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.has_value());
}

TEST(Codec, UnsupportedLabelTypeRejected) {
  std::vector<std::uint8_t> wire(12, 0);
  wire[5] = 1;
  wire.push_back(0x40);  // 01xxxxxx: extended label type, unsupported
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Codec, CompressedPointerIntoQuestionWorks) {
  // Craft: question "a.b", answer name = pointer to question name.
  Message m = make_query(5, DnsName::must_parse("a.b"));
  m.header.flags.qr = true;
  m.answers.push_back(ResourceRecord{DnsName::must_parse("a.b"), RRType::kA,
                                     RRClass::kIN, 60,
                                     ARdata{net::IPv4Addr(9, 9, 9, 9)}});
  const auto wire = encode(m, {.compress = true});
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers[0].name, DnsName::must_parse("a.b"));
}

TEST(Codec, DecodePartialCompleteOnGoodMessage) {
  const auto wire = encode(sample_message());
  const PartialDecode partial = decode_partial(wire);
  EXPECT_TRUE(partial.complete());
  EXPECT_EQ(partial.message.answers.size(), 1u);
}

TEST(Codec, EncodeNameMatchesWireLength) {
  const auto n = DnsName::must_parse("www.example.com");
  EXPECT_EQ(encode_name(n).size(), n.wire_length());
}

// ---- Builders ------------------------------------------------------------------------

TEST(Builder, QueryShape) {
  const Message q = make_query(42, DnsName::must_parse("probe.example.net"),
                               RRType::kANY);
  EXPECT_FALSE(q.header.flags.qr);
  EXPECT_TRUE(q.header.flags.rd);
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_EQ(q.questions[0].qtype, RRType::kANY);
}

TEST(Builder, ResponseEchoesQuestionAndId) {
  const Message q = make_query(42, DnsName::must_parse("probe.example.net"));
  const Message r = make_a_response(q, net::IPv4Addr(1, 2, 3, 4));
  EXPECT_TRUE(r.header.flags.qr);
  EXPECT_EQ(r.header.id, 42);
  ASSERT_TRUE(r.first_a_answer().has_value());
  EXPECT_EQ(r.first_a_answer()->to_string(), "1.2.3.4");
}

TEST(Builder, ErrorResponseHasNoAnswer) {
  const Message q = make_query(1, DnsName::must_parse("x.example.net"));
  const Message r = make_error_response(q, Rcode::kRefused, false);
  EXPECT_EQ(r.header.flags.rcode, Rcode::kRefused);
  EXPECT_FALSE(r.has_answer());
  EXPECT_FALSE(r.header.flags.ra);
}

TEST(Builder, ReferralCarriesGlue) {
  const Message q = make_query(1, DnsName::must_parse("x.sld.net"));
  const Message r = make_referral(
      q, DnsName::must_parse("sld.net"),
      {{DnsName::must_parse("ns1.sld.net"), net::IPv4Addr(5, 6, 7, 8)}});
  ASSERT_EQ(r.authority.size(), 1u);
  ASSERT_EQ(r.additional.size(), 1u);
  EXPECT_EQ(r.authority[0].type, RRType::kNS);
  EXPECT_EQ(r.additional[0].type, RRType::kA);
}

TEST(Message, FirstAAnswerSkipsNonA) {
  Message m = make_query(1, DnsName::must_parse("x.y"));
  m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kCNAME,
                                     RRClass::kIN, 60,
                                     NameRdata{DnsName::must_parse("z.y")}});
  EXPECT_FALSE(m.first_a_answer().has_value());
  m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kA,
                                     RRClass::kIN, 60,
                                     ARdata{net::IPv4Addr(4, 4, 4, 4)}});
  EXPECT_TRUE(m.first_a_answer().has_value());
}

TEST(Message, ToStringMentionsSections) {
  const std::string s = sample_message().to_string();
  EXPECT_NE(s.find("ANSWER"), std::string::npos);
  EXPECT_NE(s.find("AUTHORITY"), std::string::npos);
  EXPECT_NE(s.find("flags:"), std::string::npos);
}

// ---- Truncator (wire-level whole-record cut, TC=1) -----------------------------

/// A response with `answers` A records on one question (compressed names, so
/// every cut point exercises the backward-pointer property).
Message fat_response(int answers) {
  Message m = make_query(0x7A7A, DnsName::must_parse("big.ucfsealresearch.net"));
  m.header.flags.qr = true;
  for (int i = 0; i < answers; ++i)
    m.answers.push_back(ResourceRecord{m.questions[0].qname, RRType::kA,
                                       RRClass::kIN, 300,
                                       ARdata{net::IPv4Addr(10, 0, 0, 1 + i)}});
  return m;
}

TEST(Truncator, FittingPacketIsUntouched) {
  auto wire = encode(fat_response(3));
  const auto original = wire;
  const TruncationCut cut = Truncator::plan(wire, wire.size());
  EXPECT_TRUE(cut.valid);
  EXPECT_FALSE(cut.needed);
  EXPECT_EQ(Truncator::truncate(wire, wire.size()), original.size());
  EXPECT_EQ(wire, original);
}

TEST(Truncator, BudgetOfExactlyHeaderKeepsOnlyHeader) {
  auto wire = encode(fat_response(2));
  const std::size_t len = Truncator::truncate(wire, Truncator::kHeaderSize);
  EXPECT_EQ(len, Truncator::kHeaderSize);
  const auto decoded = decode(std::span(wire.data(), len));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.flags.tc);
  EXPECT_TRUE(decoded->questions.empty());
  EXPECT_TRUE(decoded->answers.empty());
}

TEST(Truncator, BudgetBelowHeaderIsInvalidAndLeavesThePacketAlone) {
  auto wire = encode(fat_response(1));
  const auto original = wire;
  EXPECT_FALSE(Truncator::plan(wire, Truncator::kHeaderSize - 1).valid);
  EXPECT_EQ(Truncator::truncate(wire, Truncator::kHeaderSize - 1),
            original.size());
  EXPECT_EQ(wire, original);
}

TEST(Truncator, CutNeverSplitsTheQuestion) {
  Message q = fat_response(0);
  auto wire = encode(q);
  // Any budget inside the question section keeps only the header.
  for (std::size_t b = Truncator::kHeaderSize; b < wire.size(); ++b) {
    const TruncationCut cut = Truncator::plan(wire, b);
    ASSERT_TRUE(cut.valid) << b;
    EXPECT_EQ(cut.len, Truncator::kHeaderSize) << b;
    EXPECT_EQ(cut.qdcount, 0u) << b;
  }
}

TEST(Truncator, FirstAnswerBoundaryIsExact) {
  // The wire of (question + 1 answer) is a length-prefix of (question + 2):
  // only header count bytes differ. That gives the exact first-RR edge.
  const std::size_t one_answer_len = encode(fat_response(1)).size();
  auto wire = encode(fat_response(2));
  ASSERT_GT(wire.size(), one_answer_len);

  const TruncationCut keep = Truncator::plan(wire, one_answer_len);
  EXPECT_TRUE(keep.valid);
  EXPECT_EQ(keep.len, one_answer_len);
  EXPECT_EQ(keep.qdcount, 1u);
  EXPECT_EQ(keep.ancount, 1u);

  // One byte short of the boundary: the whole first answer goes.
  const TruncationCut drop = Truncator::plan(wire, one_answer_len - 1);
  EXPECT_TRUE(drop.valid);
  EXPECT_EQ(drop.ancount, 0u);
  EXPECT_EQ(drop.len, encode(fat_response(0)).size());

  auto copy = wire;
  const std::size_t len = Truncator::truncate(copy, one_answer_len);
  const auto decoded = decode(std::span(copy.data(), len));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.flags.tc);
  ASSERT_EQ(decoded->answers.size(), 1u);
}

TEST(Truncator, MalformedCountsAreRejected) {
  auto wire = encode(fat_response(2));
  wire[7] = 9;  // ANCOUNT low byte lies: claims 9 answers, payload has 2
  EXPECT_FALSE(Truncator::plan(wire, 12).valid);
  const auto original = wire;
  EXPECT_EQ(Truncator::truncate(wire, 12), original.size());
  EXPECT_EQ(wire, original);
}

TEST(Truncator, EdnsBudgetsCutDecodablyAndMonotonically) {
  // A ~6 KB TXT answer so even the 4096 budget has to cut.
  Message m = make_query(0x600D, DnsName::must_parse("txt.ucfsealresearch.net"));
  m.header.flags.qr = true;
  for (int i = 0; i < 30; ++i)
    m.answers.push_back(ResourceRecord{
        m.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
        TxtRdata{{std::string(200, static_cast<char>('a' + i % 26))}}});
  const auto full = encode(m);
  ASSERT_GT(full.size(), 4096u);

  std::size_t prev_survivors = 0;
  for (const std::size_t budget : {std::size_t{512}, std::size_t{1232},
                                   std::size_t{4096}}) {
    auto wire = full;
    const TruncationCut cut = Truncator::plan(wire, budget);
    ASSERT_TRUE(cut.valid) << budget;
    EXPECT_TRUE(cut.needed) << budget;
    const std::size_t len = Truncator::truncate(wire, budget);
    EXPECT_LE(len, budget) << budget;
    const auto decoded = decode(std::span(wire.data(), len));
    ASSERT_TRUE(decoded.has_value()) << budget;
    EXPECT_TRUE(decoded->header.flags.tc) << budget;
    EXPECT_EQ(decoded->answers.size(), cut.ancount) << budget;
    EXPECT_GE(decoded->answers.size(), prev_survivors) << budget;
    prev_survivors = decoded->answers.size();
  }
  EXPECT_GT(prev_survivors, 0u);  // 4096 keeps a non-trivial prefix
}

TEST(Truncator, EveryBudgetYieldsADecodablePrefix) {
  const auto full = encode(sample_message());
  for (std::size_t b = Truncator::kHeaderSize; b <= full.size(); ++b) {
    auto wire = full;
    const std::size_t len = Truncator::truncate(wire, b);
    ASSERT_LE(len, b) << b;
    const auto decoded = decode(std::span(wire.data(), len));
    ASSERT_TRUE(decoded.has_value()) << "budget " << b;
    if (len < full.size()) EXPECT_TRUE(decoded->header.flags.tc) << b;
  }
}

}  // namespace
}  // namespace orp::dns
