#include <gtest/gtest.h>

#include "authns/auth_server.h"
#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/edns.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"

namespace orp::dns {
namespace {

// ---- OPT pseudo-RR round trips ----------------------------------------------

TEST(Edns, SetAndExtract) {
  Message m = make_query(1, DnsName::must_parse("x.example.net"));
  EXPECT_FALSE(extract_edns(m).has_value());
  set_edns(m, EdnsInfo{.udp_payload_size = 4096, .do_bit = true});
  const auto info = extract_edns(m);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->udp_payload_size, 4096);
  EXPECT_TRUE(info->do_bit);
  EXPECT_EQ(info->version, 0);
}

TEST(Edns, SurvivesWireRoundTrip) {
  Message m = make_query(1, DnsName::must_parse("x.example.net"));
  set_edns(m, EdnsInfo{.udp_payload_size = 1232});
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  const auto info = extract_edns(*decoded);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->udp_payload_size, 1232);
}

TEST(Edns, SetReplacesExistingOpt) {
  Message m = make_query(1, DnsName::must_parse("x.example.net"));
  set_edns(m, EdnsInfo{.udp_payload_size = 512});
  set_edns(m, EdnsInfo{.udp_payload_size = 4096});
  EXPECT_EQ(m.additional.size(), 1u);
  EXPECT_EQ(extract_edns(m)->udp_payload_size, 4096);
}

TEST(Edns, ClearRemovesOpt) {
  Message m = make_query(1, DnsName::must_parse("x.example.net"));
  set_edns(m, EdnsInfo{});
  clear_edns(m);
  EXPECT_FALSE(extract_edns(m).has_value());
}

TEST(Edns, BudgetDefaultsTo512WithoutOpt) {
  const Message m = make_query(1, DnsName::must_parse("x.example.net"));
  EXPECT_EQ(response_size_budget(m), kClassicUdpLimit);
}

TEST(Edns, TinyAdvertisedBufferClampsTo512) {
  Message m = make_query(1, DnsName::must_parse("x.example.net"));
  set_edns(m, EdnsInfo{.udp_payload_size = 100});
  EXPECT_EQ(response_size_budget(m), kClassicUdpLimit);
}

// ---- Truncation ----------------------------------------------------------------

Message bulky_response() {
  Message q = make_query(7, DnsName::must_parse("big.example.net"),
                         RRType::kANY);
  Message r = make_response(q);
  for (int i = 0; i < 30; ++i) {
    r.answers.push_back(ResourceRecord{
        q.questions[0].qname, RRType::kTXT, RRClass::kIN, 300,
        TxtRdata{{"record-" + std::to_string(i) + std::string(40, 'x')}}});
  }
  return r;
}

TEST(Edns, TruncateLeavesSmallMessagesAlone) {
  Message r = make_a_response(make_query(1, DnsName::must_parse("a.b")),
                              net::IPv4Addr(1, 2, 3, 4));
  EXPECT_FALSE(truncate_to_fit(r, kClassicUdpLimit));
  EXPECT_FALSE(r.header.flags.tc);
}

TEST(Edns, TruncateSetsTcAndFits) {
  Message r = bulky_response();
  ASSERT_GT(encode(r).size(), kClassicUdpLimit);
  EXPECT_TRUE(truncate_to_fit(r, kClassicUdpLimit));
  EXPECT_TRUE(r.header.flags.tc);
  EXPECT_LE(encode(r).size(), kClassicUdpLimit);
  EXPECT_EQ(r.questions.size(), 1u);  // question preserved
}

TEST(Edns, LargerBudgetKeepsMoreRecords) {
  Message small = bulky_response();
  Message large = bulky_response();
  truncate_to_fit(small, 512);
  const bool large_truncated = truncate_to_fit(large, 4096);
  EXPECT_GE(large.answers.size(), small.answers.size());
  if (large_truncated) {
    EXPECT_TRUE(large.header.flags.tc);
  }
}

}  // namespace
}  // namespace orp::dns

namespace orp::resolver {
namespace {

// ---- End-to-end: auth truncation + engine fallback ------------------------------

class EdnsPathFixture : public ::testing::Test {
 protected:
  EdnsPathFixture()
      : net(loop, 5),
        scheme(dns::DnsName::must_parse("ucfsealresearch.net"), 1000, 7),
        auth(net, net::IPv4Addr(45, 76, 18, 21), scheme,
             net::SimTime::nanos(0)),
        hierarchy(build_hierarchy(net, scheme.sld(),
                                  scheme.sld().child("ns1"), auth.address(),
                                  1)) {
    net.set_latency({net::SimTime::millis(2), net::SimTime::millis(1)});
    // A record-rich apex so ANY overflows 512 bytes.
    for (int i = 0; i < 12; ++i) {
      auth.add_record(dns::ResourceRecord{
          scheme.sld(), dns::RRType::kTXT, dns::RRClass::kIN, 3600,
          dns::TxtRdata{{"filler-" + std::to_string(i) + std::string(48, 'y')}}});
    }
    engine_config.hints = hierarchy.hints;
  }

  net::EventLoop loop;
  net::Network net;
  zone::SubdomainScheme scheme;
  authns::AuthServer auth;
  SimHierarchy hierarchy;
  EngineConfig engine_config;
};

TEST_F(EdnsPathFixture, ClassicClientGetsTruncatedAnyResponse) {
  const net::Endpoint client{net::IPv4Addr(9, 9, 9, 9), 5353};
  std::optional<dns::Message> reply;
  net.bind(client, [&](const net::Datagram& d) {
    auto decoded = dns::decode(d.payload);
    ASSERT_TRUE(decoded.has_value());
    reply = *decoded;
    EXPECT_LE(d.payload.size(), dns::kClassicUdpLimit);
  });
  net.send(net::Datagram{
      client, net::Endpoint{auth.address(), net::kDnsPort},
      dns::encode(dns::make_query(1, scheme.sld(), dns::RRType::kANY))});
  loop.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->header.flags.tc);
  EXPECT_GE(auth.stats().truncated, 1u);
}

TEST_F(EdnsPathFixture, EdnsClientGetsFullAnyResponse) {
  const net::Endpoint client{net::IPv4Addr(9, 9, 9, 9), 5353};
  std::optional<dns::Message> reply;
  std::size_t wire_size = 0;
  net.bind(client, [&](const net::Datagram& d) {
    wire_size = d.payload.size();
    auto decoded = dns::decode(d.payload);
    ASSERT_TRUE(decoded.has_value());
    reply = *decoded;
  });
  dns::Message q = dns::make_query(1, scheme.sld(), dns::RRType::kANY);
  dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 4096});
  net.send(net::Datagram{client, net::Endpoint{auth.address(), net::kDnsPort},
                         dns::encode(q)});
  loop.run();
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->header.flags.tc);
  EXPECT_GT(wire_size, dns::kClassicUdpLimit);
  EXPECT_GE(reply->answers.size(), 12u);
  // The server echoes its own OPT.
  EXPECT_TRUE(dns::extract_edns(*reply).has_value());
}

TEST_F(EdnsPathFixture, EngineFallsBackOnTruncation) {
  EngineConfig cfg = engine_config;
  cfg.edns_payload_size = 0;  // classic resolver: will hit TC on big ANY
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), cfg, 1);
  std::optional<ResolutionOutcome> result;
  engine.resolve(scheme.sld(), dns::RRType::kANY,
                 [&](const ResolutionOutcome& o) { result = o; });
  loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  EXPECT_GE(result->answers.size(), 12u);  // fetched in full via fallback
  EXPECT_GE(engine.truncated_seen(), 1u);
}

TEST_F(EdnsPathFixture, DnssecDoBitReachesTheAuthServer) {
  EngineConfig cfg = engine_config;
  cfg.dnssec_ok = true;
  IterativeEngine validating(net, net::IPv4Addr(8, 8, 8, 8), cfg, 1);
  IterativeEngine plain(net, net::IPv4Addr(8, 8, 4, 4), engine_config, 2);
  int done = 0;
  validating.resolve(scheme.qname({0, 1}), dns::RRType::kA,
                     [&](const ResolutionOutcome&) { ++done; });
  plain.resolve(scheme.qname({0, 2}), dns::RRType::kA,
                [&](const ResolutionOutcome&) { ++done; });
  loop.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(auth.stats().edns_queries, 2u);      // both resolvers use EDNS
  EXPECT_EQ(auth.stats().dnssec_do_queries, 1u); // only the validator sets DO
}

TEST_F(EdnsPathFixture, EdnsEngineNeverSeesTruncation) {
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), engine_config, 1);
  std::optional<ResolutionOutcome> result;
  engine.resolve(scheme.sld(), dns::RRType::kANY,
                 [&](const ResolutionOutcome& o) { result = o; });
  loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(engine.truncated_seen(), 0u);
}

}  // namespace
}  // namespace orp::resolver
