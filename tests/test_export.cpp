#include <gtest/gtest.h>

#include "analysis/export.h"

namespace orp::analysis {
namespace {

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("1.2.3.4"), "1.2.3.4");
}

TEST(CsvEscape, QuotesCommasAndNewlines) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

R2View make_view(AnswerForm form) {
  R2View v;
  v.resolver = net::IPv4Addr(9, 8, 7, 6);
  v.has_question = true;
  v.ra = true;
  v.form = form;
  if (form == AnswerForm::kIp) {
    v.answer_ip = net::IPv4Addr(1, 2, 3, 4);
    v.correct = true;
  }
  if (form == AnswerForm::kString) v.answer_text = "wild, \"quoted\"";
  return v;
}

TEST(ViewsCsv, HeaderPlusOneRowPerView) {
  const std::vector<R2View> views{make_view(AnswerForm::kIp),
                                  make_view(AnswerForm::kNone)};
  const std::string csv = views_to_csv(views);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("resolver,time_s"), std::string::npos);
  EXPECT_NE(csv.find("9.8.7.6"), std::string::npos);
  EXPECT_NE(csv.find("1.2.3.4,1"), std::string::npos);
}

TEST(ViewsCsv, GarbageAnswersAreEscaped) {
  const std::vector<R2View> views{make_view(AnswerForm::kString)};
  const std::string csv = views_to_csv(views);
  EXPECT_NE(csv.find("\"wild, \"\"quoted\"\"\""), std::string::npos);
}

TEST(AnalysisCsv, CarriesHeadlineMetrics) {
  ScanAnalysis a;
  a.r2_total = 100;
  a.answers = AnswerBreakdown{.r2 = 100, .without_answer = 50, .correct = 40,
                              .incorrect = 10};
  a.malicious.total_r2 = 3;
  a.malicious.total_ips = 2;
  a.malicious.categories[0] = CategoryRow{2, 3};
  a.geo.countries.push_back(CountryCount{"US", 3});
  const std::string csv = analysis_to_csv(a);
  EXPECT_NE(csv.find("answers_correct,40"), std::string::npos);
  EXPECT_NE(csv.find("error_rate_percent,20"), std::string::npos);
  EXPECT_NE(csv.find("malicious_r2,3"), std::string::npos);
  EXPECT_NE(csv.find("malicious_Malware,3"), std::string::npos);
  EXPECT_NE(csv.find("geo_US,3"), std::string::npos);
}

}  // namespace
}  // namespace orp::analysis
