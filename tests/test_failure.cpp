// Failure injection: packet loss and authoritative-server outages.
//
// A measurement pipeline that only works on a perfect network is not a
// measurement pipeline. These tests verify the scanner and analysis degrade
// the way the real system would: loss costs responses but never wedges the
// scan; an unreachable authoritative server turns honest resolvers into
// ServFail responders (the behavior BIND operators see during outages).
#include <gtest/gtest.h>

#include "authns/auth_server.h"
#include "core/paper_data.h"
#include "core/pipeline.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"

namespace orp {
namespace {

TEST(LossInjection, ScanCompletesAndUndercountsProportionally) {
  core::PipelineConfig clean_cfg;
  clean_cfg.scale = 16384;
  clean_cfg.seed = 11;
  const core::ScanOutcome clean =
      core::run_measurement(core::paper_2018(), clean_cfg);

  core::PipelineConfig lossy_cfg = clean_cfg;
  lossy_cfg.loss_rate = 0.25;
  const core::ScanOutcome lossy =
      core::run_measurement(core::paper_2018(), lossy_cfg);

  // The scan always terminates and sends the same probe set.
  EXPECT_EQ(lossy.scan.q1_sent, clean.scan.q1_sent);
  // Responses drop: losing Q1 or R2 kills a flow; the survival rate for a
  // direct exchange is (1-p)^2 ~ 56%, with recursion paths faring worse.
  EXPECT_LT(lossy.scan.r2_received, clean.scan.r2_received);
  const double survival = static_cast<double>(lossy.scan.r2_received) /
                          static_cast<double>(clean.scan.r2_received);
  EXPECT_GT(survival, 0.30);
  EXPECT_LT(survival, 0.80);
  // The analysis still runs and stays internally consistent.
  EXPECT_EQ(lossy.analysis.answers.r2,
            lossy.analysis.answers.without_answer +
                lossy.analysis.answers.with_answer());
}

TEST(LossInjection, TotalLossYieldsZeroResponsesNotAHang) {
  core::PipelineConfig cfg;
  cfg.scale = 65536;
  cfg.seed = 11;
  cfg.loss_rate = 1.0;
  const core::ScanOutcome outcome =
      core::run_measurement(core::paper_2018(), cfg);
  EXPECT_EQ(outcome.scan.r2_received, 0u);
  EXPECT_GT(outcome.scan.q1_sent, 0u);
}

class OutageFixture : public ::testing::Test {
 protected:
  OutageFixture()
      : net(loop, 7),
        scheme(dns::DnsName::must_parse("ucfsealresearch.net"), 1000, 7) {
    net.set_latency({net::SimTime::millis(5), net::SimTime::millis(2)});
  }

  std::optional<dns::Message> probe(net::IPv4Addr host,
                                    const dns::DnsName& qname) {
    std::optional<dns::Message> response;
    const net::Endpoint prober{net::IPv4Addr(132, 170, 3, 44), 54321};
    net.bind(prober, [&](const net::Datagram& d) {
      if (const auto decoded = dns::decode(d.payload)) response = *decoded;
    });
    net.send(net::Datagram{prober, net::Endpoint{host, net::kDnsPort},
                           dns::encode(dns::make_query(9, qname))});
    loop.run();
    net.unbind(prober);
    return response;
  }

  net::EventLoop loop;
  net::Network net;
  zone::SubdomainScheme scheme;
};

TEST_F(OutageFixture, HonestResolverServFailsWhenAuthIsDown) {
  // Hierarchy exists, but the delegated auth server address is never bound.
  const auto hierarchy = resolver::build_hierarchy(
      net, scheme.sld(), scheme.sld().child("ns1"),
      net::IPv4Addr(45, 76, 18, 21), 2);
  resolver::EngineConfig cfg;
  cfg.hints = hierarchy.hints;
  cfg.query_timeout = net::SimTime::millis(100);
  cfg.max_retries = 1;
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  resolver::ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), honest, cfg, 1);

  const auto r2 = probe(host.address(), scheme.qname({0, 1}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->header.flags.rcode, dns::Rcode::kServFail);
  EXPECT_FALSE(r2->has_answer());
}

TEST_F(OutageFixture, HonestResolverServFailsWithNoRootsAtAll) {
  resolver::EngineConfig cfg;  // empty hints: the resolver is marooned
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  resolver::ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), honest, cfg, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 1}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->header.flags.rcode, dns::Rcode::kServFail);
}

TEST_F(OutageFixture, ResolverSurvivesMidResolutionAuthDisappearance) {
  authns::AuthServer auth(net, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  const auto hierarchy = resolver::build_hierarchy(
      net, scheme.sld(), scheme.sld().child("ns1"), auth.address(), 2);
  resolver::EngineConfig cfg;
  cfg.hints = hierarchy.hints;
  cfg.query_timeout = net::SimTime::millis(100);
  cfg.max_retries = 1;
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  resolver::ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), honest, cfg, 1);

  // Take the auth server off the network just as the probe goes out: the
  // resolver's root/TLD walk succeeds but the final leg times out.
  loop.schedule_in(net::SimTime::millis(1), [this, &auth] {
    net.unbind(net::Endpoint{auth.address(), net::kDnsPort});
  });
  const auto r2 = probe(host.address(), scheme.qname({0, 1}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->header.flags.rcode, dns::Rcode::kServFail);
}

TEST_F(OutageFixture, LostForwarderUpstreamMeansSilence) {
  resolver::EngineConfig cfg;
  resolver::BehaviorProfile fwd;
  fwd.answer = resolver::AnswerMode::kRecursive;
  fwd.forwarder = true;
  fwd.upstream = net::IPv4Addr(66, 1, 1, 1);  // nobody home
  resolver::ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), fwd, cfg, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 1}));
  // The forwarder has no answer to relay and (like real CPE gear) no
  // timeout of its own: the probe is simply never answered.
  EXPECT_FALSE(r2.has_value());
}

}  // namespace
}  // namespace orp
