// Robustness property tests: the decoder faces 6.5 million packets from
// arbitrary, sometimes hostile, implementations — it must never misbehave on
// any byte sequence. These tests hammer it with random and mutated inputs.
#include <gtest/gtest.h>

#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/edns.h"
#include "net/pcap.h"
#include "util/rng.h"

namespace orp::dns {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, DecodeNeverMisbehavesOnRandomBytes) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> bytes(rng.bounded(160));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    // Must return (value or error) without crashing or hanging.
    const auto decoded = decode(bytes);
    const auto partial = decode_partial(bytes);
    if (decoded.has_value()) {
      // Whatever decoded must re-encode without crashing.
      const auto wire = encode(*decoded);
      EXPECT_FALSE(wire.empty());
    }
    (void)partial;
  }
}

TEST_P(FuzzSweep, DecodeSurvivesMutatedRealPackets) {
  util::Rng rng(GetParam() + 100);
  Message base = make_query(
      1234, DnsName::must_parse("or001.0034567.ucfsealresearch.net"));
  base.header.flags.qr = true;
  base.answers.push_back(ResourceRecord{base.questions[0].qname, RRType::kA,
                                        RRClass::kIN, 300,
                                        ARdata{net::IPv4Addr(1, 2, 3, 4)}});
  set_edns(base, EdnsInfo{.udp_payload_size = 4096});
  const auto clean = encode(base);
  for (int round = 0; round < 5000; ++round) {
    auto wire = clean;
    const int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips; ++f)
      wire[rng.bounded(wire.size())] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    const auto decoded = decode(wire);
    if (decoded.has_value()) (void)encode(*decoded);
    (void)decode_partial(wire);
  }
}

TEST_P(FuzzSweep, TruncatedPrefixesOfValidPacketsAreHandled) {
  Message base = make_query(7, DnsName::must_parse("www.example.net"));
  base.header.flags.qr = true;
  base.answers.push_back(ResourceRecord{
      base.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"some moderately long answer payload text"}}});
  const auto clean = encode(base);
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const std::vector<std::uint8_t> prefix(clean.begin(),
                                           clean.begin() +
                                               static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode(prefix).has_value()) << "prefix length " << len;
  }
  EXPECT_TRUE(decode(clean).has_value());
}

TEST_P(FuzzSweep, RandomMessagesRoundTrip) {
  util::Rng rng(GetParam() + 999);
  for (int round = 0; round < 400; ++round) {
    Message m;
    m.header.id = static_cast<std::uint16_t>(rng());
    m.header.flags = Flags::unpack(static_cast<std::uint16_t>(rng()));
    const int labels = 1 + static_cast<int>(rng.bounded(4));
    std::string name;
    for (int l = 0; l < labels; ++l) {
      if (l) name += ".";
      const int len = 1 + static_cast<int>(rng.bounded(12));
      for (int c = 0; c < len; ++c)
        name += static_cast<char>('a' + rng.bounded(26));
    }
    m.questions.push_back(Question{DnsName::must_parse(name), RRType::kA,
                                   RRClass::kIN});
    const int answers = static_cast<int>(rng.bounded(4));
    for (int a = 0; a < answers; ++a) {
      m.answers.push_back(ResourceRecord{
          m.questions[0].qname, RRType::kA, RRClass::kIN,
          static_cast<std::uint32_t>(rng.bounded(100000)),
          ARdata{net::IPv4Addr(static_cast<std::uint32_t>(rng()))}});
    }
    const bool compress = rng.chance(0.5);
    const auto decoded = decode(encode(m, {.compress = compress}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->header.id, m.header.id);
    EXPECT_EQ(decoded->header.flags, m.header.flags);
    ASSERT_EQ(decoded->answers.size(), m.answers.size());
    for (std::size_t a = 0; a < m.answers.size(); ++a)
      EXPECT_EQ(to_string(decoded->answers[a]), to_string(m.answers[a]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3, 4));

TEST(PcapFuzz, RandomBytesNeverCrashTheReader) {
  util::Rng rng(5);
  for (int round = 0; round < 3000; ++round) {
    std::vector<std::uint8_t> bytes(rng.bounded(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)orp::net::from_pcap(bytes);
  }
}

TEST(NameFuzz, RandomTextParseNeverCrashes) {
  util::Rng rng(6);
  for (int round = 0; round < 5000; ++round) {
    std::string text(rng.bounded(80), '\0');
    for (auto& c : text) c = static_cast<char>(rng.bounded(128));
    const auto parsed = DnsName::parse(text);
    if (parsed) {
      // Whatever parsed must print and re-parse consistently.
      const auto again = DnsName::parse(parsed->to_string());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *parsed);
    }
  }
}

}  // namespace
}  // namespace orp::dns
