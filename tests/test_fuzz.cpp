// Robustness property tests: the decoder faces 6.5 million packets from
// arbitrary, sometimes hostile, implementations — it must never misbehave on
// any byte sequence. These tests hammer it with random and mutated inputs.
#include <gtest/gtest.h>

#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/decode_view.h"
#include "dns/edns.h"
#include "net/pcap.h"
#include "util/rng.h"

namespace orp::dns {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, DecodeNeverMisbehavesOnRandomBytes) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> bytes(rng.bounded(160));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    // Must return (value or error) without crashing or hanging.
    const auto decoded = decode(bytes);
    const auto partial = decode_partial(bytes);
    if (decoded.has_value()) {
      // Whatever decoded must re-encode without crashing.
      const auto wire = encode(*decoded);
      EXPECT_FALSE(wire.empty());
    }
    (void)partial;
  }
}

TEST_P(FuzzSweep, DecodeSurvivesMutatedRealPackets) {
  util::Rng rng(GetParam() + 100);
  Message base = make_query(
      1234, DnsName::must_parse("or001.0034567.ucfsealresearch.net"));
  base.header.flags.qr = true;
  base.answers.push_back(ResourceRecord{base.questions[0].qname, RRType::kA,
                                        RRClass::kIN, 300,
                                        ARdata{net::IPv4Addr(1, 2, 3, 4)}});
  set_edns(base, EdnsInfo{.udp_payload_size = 4096});
  const auto clean = encode(base);
  for (int round = 0; round < 5000; ++round) {
    auto wire = clean;
    const int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips; ++f)
      wire[rng.bounded(wire.size())] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
    const auto decoded = decode(wire);
    if (decoded.has_value()) (void)encode(*decoded);
    (void)decode_partial(wire);
  }
}

TEST_P(FuzzSweep, TruncatedPrefixesOfValidPacketsAreHandled) {
  Message base = make_query(7, DnsName::must_parse("www.example.net"));
  base.header.flags.qr = true;
  base.answers.push_back(ResourceRecord{
      base.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"some moderately long answer payload text"}}});
  const auto clean = encode(base);
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const std::vector<std::uint8_t> prefix(clean.begin(),
                                           clean.begin() +
                                               static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode(prefix).has_value()) << "prefix length " << len;
  }
  EXPECT_TRUE(decode(clean).has_value());
}

TEST_P(FuzzSweep, RandomMessagesRoundTrip) {
  util::Rng rng(GetParam() + 999);
  for (int round = 0; round < 400; ++round) {
    Message m;
    m.header.id = static_cast<std::uint16_t>(rng());
    m.header.flags = Flags::unpack(static_cast<std::uint16_t>(rng()));
    const int labels = 1 + static_cast<int>(rng.bounded(4));
    std::string name;
    std::string first_label;
    for (int l = 0; l < labels; ++l) {
      if (l) name += ".";
      // Sometimes repeat the first label so the name's suffix matches its
      // own prefix (a.a.example) — exercises the compression writer's
      // frontier check against self-matching candidates.
      if (l > 0 && rng.chance(0.25)) {
        name += first_label;
        continue;
      }
      const int len = 1 + static_cast<int>(rng.bounded(12));
      std::string label;
      for (int c = 0; c < len; ++c)
        label += static_cast<char>('a' + rng.bounded(26));
      if (l == 0) first_label = label;
      name += label;
    }
    m.questions.push_back(Question{DnsName::must_parse(name), RRType::kA,
                                   RRClass::kIN});
    const int answers = static_cast<int>(rng.bounded(4));
    for (int a = 0; a < answers; ++a) {
      m.answers.push_back(ResourceRecord{
          m.questions[0].qname, RRType::kA, RRClass::kIN,
          static_cast<std::uint32_t>(rng.bounded(100000)),
          ARdata{net::IPv4Addr(static_cast<std::uint32_t>(rng()))}});
    }
    const bool compress = rng.chance(0.5);
    const auto decoded = decode(encode(m, {.compress = compress}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->header.id, m.header.id);
    EXPECT_EQ(decoded->header.flags, m.header.flags);
    ASSERT_EQ(decoded->answers.size(), m.answers.size());
    for (std::size_t a = 0; a < m.answers.size(); ++a)
      EXPECT_EQ(to_string(decoded->answers[a]), to_string(m.answers[a]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3, 4));

// ---- DecodeView / decode_partial differential ----------------------------
//
// classify_r2 runs on DecodeView; the forensics path still materializes via
// decode_partial. These sweeps pin that, on *any* byte sequence, the two
// agree on every field the classifier reads: failure stage and error,
// header bits, question count + first question, answer count + the first
// answer's type/class/ttl/rdata.

void expect_view_matches_partial(std::span<const std::uint8_t> wire) {
  const DecodeView v = DecodeView::parse(wire);
  const PartialDecode p = decode_partial(wire);
  ASSERT_EQ(static_cast<int>(v.failed_at), static_cast<int>(p.failed_at));
  ASSERT_EQ(v.error, p.error);
  if (v.failed_at == DecodeStage::kHeader) return;

  EXPECT_EQ(v.header.id, p.message.header.id);
  EXPECT_EQ(v.header.flags, p.message.header.flags);
  EXPECT_EQ(v.header.qdcount, p.message.header.qdcount);
  EXPECT_EQ(v.header.ancount, p.message.header.ancount);
  EXPECT_EQ(v.header.nscount, p.message.header.nscount);
  EXPECT_EQ(v.header.arcount, p.message.header.arcount);

  ASSERT_EQ(v.questions_parsed, p.message.questions.size());
  if (v.questions_parsed > 0) {
    const Question& q = p.message.questions.front();
    EXPECT_EQ(v.qname.to_string(), q.qname.to_string());
    EXPECT_EQ(v.qname.canonical_key(), q.qname.canonical_key());
    EXPECT_EQ(v.qname.label_count(), q.qname.label_count());
    EXPECT_EQ(v.qtype, q.qtype);
    EXPECT_EQ(v.qclass, q.qclass);
  }

  ASSERT_EQ(v.answers_parsed, p.message.answers.size());
  if (v.answers_parsed == 0) return;
  const ResourceRecord& rr = p.message.answers.front();
  const AnswerRecordView& av = v.first_answer;
  EXPECT_EQ(av.name.to_string(), rr.name.to_string());
  EXPECT_EQ(av.type, rr.type);
  EXPECT_EQ(av.rrclass, rr.rrclass);
  EXPECT_EQ(av.ttl, rr.ttl);
  switch (av.type) {
    case RRType::kA: {
      ASSERT_EQ(av.rdata.size(), 4u);
      const auto addr = net::IPv4Addr(
          (std::uint32_t{av.rdata[0]} << 24) | (std::uint32_t{av.rdata[1]} << 16) |
          (std::uint32_t{av.rdata[2]} << 8) | std::uint32_t{av.rdata[3]});
      EXPECT_EQ(addr, std::get<ARdata>(rr.rdata).addr);
      break;
    }
    case RRType::kNS:
    case RRType::kCNAME:
    case RRType::kPTR:
      EXPECT_EQ(av.rdata_name.to_string(),
                std::get<NameRdata>(rr.rdata).name.to_string());
      break;
    case RRType::kTXT: {
      // Reconstruct the chunk list from the view's raw rdata span.
      std::vector<std::string> chunks;
      for (std::size_t i = 0; i < av.rdata.size();) {
        const std::size_t len = av.rdata[i++];
        ASSERT_LE(i + len, av.rdata.size());
        chunks.emplace_back(reinterpret_cast<const char*>(av.rdata.data() + i),
                            len);
        i += len;
      }
      EXPECT_EQ(chunks, std::get<TxtRdata>(rr.rdata).strings);
      break;
    }
    case RRType::kAAAA: {
      ASSERT_EQ(av.rdata.size(), 16u);
      const auto& addr = std::get<AAAARdata>(rr.rdata).addr;
      EXPECT_TRUE(std::equal(av.rdata.begin(), av.rdata.end(), addr.begin()));
      break;
    }
    case RRType::kSOA:
    case RRType::kMX:
      break;  // classifier reads only the type; decode validated both
    default: {
      const auto& raw = std::get<RawRdata>(rr.rdata).bytes;
      ASSERT_EQ(av.rdata.size(), raw.size());
      EXPECT_TRUE(std::equal(av.rdata.begin(), av.rdata.end(), raw.begin()));
    }
  }
}

class ViewDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewDifferential, AgreesWithPartialOnRandomBytes) {
  util::Rng rng(GetParam() * 77 + 11);
  for (int round = 0; round < 5000; ++round) {
    std::vector<std::uint8_t> bytes(rng.bounded(160));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    expect_view_matches_partial(bytes);
    if (::testing::Test::HasFatalFailure()) FAIL() << "round " << round;
  }
}

TEST_P(ViewDifferential, AgreesWithPartialOnMutatedRealPackets) {
  util::Rng rng(GetParam() * 77 + 500);
  Message base = make_query(
      1234, DnsName::must_parse("or001.0034567.ucfsealresearch.net"));
  base.header.flags.qr = true;
  base.answers.push_back(ResourceRecord{base.questions[0].qname, RRType::kA,
                                        RRClass::kIN, 300,
                                        ARdata{net::IPv4Addr(1, 2, 3, 4)}});
  set_edns(base, EdnsInfo{.udp_payload_size = 4096});
  const auto clean = encode(base);
  for (int round = 0; round < 5000; ++round) {
    auto wire = clean;
    const int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips; ++f)
      wire[rng.bounded(wire.size())] ^=
          static_cast<std::uint8_t>(1 + rng.bounded(255));
    expect_view_matches_partial(wire);
    if (::testing::Test::HasFatalFailure()) FAIL() << "round " << round;
  }
}

TEST_P(ViewDifferential, AgreesOnEveryAnswerShapeTheClassifierHandles) {
  const DnsName owner = DnsName::must_parse("Or001.0034567.UCFSealResearch.NET");
  const std::vector<Rdata> shapes = {
      ARdata{net::IPv4Addr(93, 184, 216, 34)},
      NameRdata{DnsName::must_parse("u.dcoin.co")},
      SoaRdata{DnsName::must_parse("ns1.example.net"),
               DnsName::must_parse("hostmaster.example.net"), 2018042601},
      MxRdata{10, DnsName::must_parse("mx.example.net")},
      TxtRdata{{"wild", "", "OK"}},   // empty mid-chunk: the double-space case
      AAAARdata{{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}},
      RawRdata{10, {0xde, 0xad, 0xbe, 0xef}},
  };
  for (const Rdata& rdata : shapes) {
    for (const bool compress : {true, false}) {
      Message m = make_query(0x4242, owner);
      m.header.flags.qr = true;
      const RRType type =
          std::holds_alternative<ARdata>(rdata)      ? RRType::kA
          : std::holds_alternative<NameRdata>(rdata) ? RRType::kCNAME
          : std::holds_alternative<SoaRdata>(rdata)  ? RRType::kSOA
          : std::holds_alternative<MxRdata>(rdata)   ? RRType::kMX
          : std::holds_alternative<TxtRdata>(rdata)  ? RRType::kTXT
          : std::holds_alternative<AAAARdata>(rdata) ? RRType::kAAAA
                                                     : static_cast<RRType>(10);
      m.answers.push_back(ResourceRecord{owner, type, RRClass::kIN, 300, rdata});
      expect_view_matches_partial(encode(m, {.compress = compress}));
      if (::testing::Test::HasFatalFailure())
        FAIL() << "type " << static_cast<int>(type) << " compress " << compress;
    }
  }
}

TEST_P(ViewDifferential, AgreesOnLyingCountsAndTruncatedPrefixes) {
  // The undecodable-answer shape: header claims an answer the packet lacks.
  Message lying = make_query(7, DnsName::must_parse("www.example.net"));
  lying.header.flags.qr = true;
  lying.header.qdcount = 1;
  lying.header.ancount = 1;
  const auto lying_wire = encode_raw_counts(lying);
  expect_view_matches_partial(lying_wire);

  Message base = make_query(7, DnsName::must_parse("www.example.net"));
  base.header.flags.qr = true;
  base.answers.push_back(ResourceRecord{
      base.questions[0].qname, RRType::kTXT, RRClass::kIN, 60,
      TxtRdata{{"some moderately long answer payload text"}}});
  const auto clean = encode(base);
  for (std::size_t len = 0; len <= clean.size(); ++len) {
    expect_view_matches_partial(
        std::span<const std::uint8_t>(clean.data(), len));
    if (::testing::Test::HasFatalFailure()) FAIL() << "prefix length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewDifferential, ::testing::Values(1, 2, 3));

TEST(PcapFuzz, RandomBytesNeverCrashTheReader) {
  util::Rng rng(5);
  for (int round = 0; round < 3000; ++round) {
    std::vector<std::uint8_t> bytes(rng.bounded(200));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)orp::net::from_pcap(bytes);
  }
}

TEST(NameFuzz, RandomTextParseNeverCrashes) {
  util::Rng rng(6);
  for (int round = 0; round < 5000; ++round) {
    std::string text(rng.bounded(80), '\0');
    for (auto& c : text) c = static_cast<char>(rng.bounded(128));
    const auto parsed = DnsName::parse(text);
    if (parsed) {
      // Whatever parsed must print and re-parse consistently.
      const auto again = DnsName::parse(parsed->to_string());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *parsed);
    }
  }
}

}  // namespace
}  // namespace orp::dns
