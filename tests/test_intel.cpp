#include <gtest/gtest.h>

#include "intel/geo_db.h"
#include "intel/org_db.h"
#include "intel/threat_db.h"

namespace orp::intel {
namespace {

// ---- ThreatDb -----------------------------------------------------------------

TEST(ThreatDb, UnreportedAddressIsClean) {
  ThreatDb db;
  EXPECT_FALSE(db.is_reported(net::IPv4Addr(8, 8, 8, 8)));
  EXPECT_TRUE(db.lookup(net::IPv4Addr(8, 8, 8, 8)).empty());
  EXPECT_FALSE(db.dominant_category(net::IPv4Addr(8, 8, 8, 8)).has_value());
}

TEST(ThreatDb, ReportsAccumulatePerSourceAndCategory) {
  ThreatDb db;
  const net::IPv4Addr addr(208, 91, 197, 91);
  db.add_report(addr, ThreatCategory::kMalware, "tracker", 2);
  db.add_report(addr, ThreatCategory::kMalware, "tracker", 3);
  db.add_report(addr, ThreatCategory::kMalware, "other", 1);
  const auto reports = db.lookup(addr);
  ASSERT_EQ(reports.size(), 2u);  // same source merged, new source appended
  EXPECT_EQ(reports[0].count, 5u);
}

TEST(ThreatDb, DominantCategoryByReportVolume) {
  ThreatDb db;
  const net::IPv4Addr addr(1, 2, 3, 4);
  db.add_report(addr, ThreatCategory::kPhishing, "a", 2);
  db.add_report(addr, ThreatCategory::kMalware, "b", 5);
  db.add_report(addr, ThreatCategory::kBotnet, "c", 1);
  EXPECT_EQ(db.dominant_category(addr), ThreatCategory::kMalware);
}

TEST(ThreatDb, DominantTieBreaksToFirstCategory) {
  ThreatDb db;
  const net::IPv4Addr addr(1, 2, 3, 4);
  db.add_report(addr, ThreatCategory::kPhishing, "a", 3);
  db.add_report(addr, ThreatCategory::kMalware, "b", 3);
  // Malware precedes phishing in the category order (Table IX order).
  EXPECT_EQ(db.dominant_category(addr), ThreatCategory::kMalware);
}

TEST(ThreatDb, ReportCardMentionsCategories) {
  ThreatDb db;
  const net::IPv4Addr addr(208, 91, 197, 91);
  db.add_report(addr, ThreatCategory::kMalware, "tracker", 4);
  db.add_report(addr, ThreatCategory::kPhishing, "feed", 1);
  const std::string card = db.report_card(addr);
  EXPECT_NE(card.find("208.91.197.91"), std::string::npos);
  EXPECT_NE(card.find("Malware"), std::string::npos);
  EXPECT_NE(card.find("Phishing"), std::string::npos);
  EXPECT_NE(card.find("dominant category: Malware"), std::string::npos);
  EXPECT_NE(db.report_card(net::IPv4Addr(9, 9, 9, 9)).find("no reports"),
            std::string::npos);
}

TEST(ThreatDb, CategoryNames) {
  EXPECT_EQ(to_string(ThreatCategory::kSshBruteforce), "SSH Bruteforce");
  EXPECT_EQ(to_string(ThreatCategory::kEmailBruteforce), "Email Bruteforce");
}

// ---- GeoDb ---------------------------------------------------------------------

TEST(GeoDb, LooksUpCoveringRange) {
  GeoDb db;
  db.add_prefix(*net::Prefix::parse("41.0.0.0/8"), "ZA", 100, "ZA-NET");
  db.build();
  EXPECT_EQ(db.country_of(net::IPv4Addr(41, 7, 7, 7)), "ZA");
  EXPECT_EQ(db.country_of(net::IPv4Addr(42, 0, 0, 1)), "??");
}

TEST(GeoDb, NarrowestNestedRangeWins) {
  GeoDb db;
  db.add_prefix(*net::Prefix::parse("41.0.0.0/8"), "ZA");
  db.add_prefix(*net::Prefix::parse("41.20.0.0/16"), "KE");
  db.add_prefix(*net::Prefix::parse("41.20.30.0/24"), "NA");
  db.build();
  EXPECT_EQ(db.country_of(net::IPv4Addr(41, 20, 30, 40)), "NA");
  EXPECT_EQ(db.country_of(net::IPv4Addr(41, 20, 99, 1)), "KE");
  EXPECT_EQ(db.country_of(net::IPv4Addr(41, 99, 0, 1)), "ZA");
}

TEST(GeoDb, SingleAddressRanges) {
  GeoDb db;
  db.add_range(net::IPv4Addr(5, 5, 5, 5), net::IPv4Addr(5, 5, 5, 5), "VG");
  db.build();
  EXPECT_EQ(db.country_of(net::IPv4Addr(5, 5, 5, 5)), "VG");
  EXPECT_EQ(db.country_of(net::IPv4Addr(5, 5, 5, 6)), "??");
}

TEST(GeoDb, LookupReturnsAsInfo) {
  GeoDb db;
  db.add_prefix(*net::Prefix::parse("9.0.0.0/8"), "US", 64500, "EXAMPLE-AS");
  db.build();
  const auto entry = db.lookup(net::IPv4Addr(9, 1, 2, 3));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->asn, 64500u);
  EXPECT_EQ(entry->as_name, "EXAMPLE-AS");
}

TEST(GeoDb, RejectsInvertedRange) {
  GeoDb db;
  EXPECT_THROW(
      db.add_range(net::IPv4Addr(2, 0, 0, 0), net::IPv4Addr(1, 0, 0, 0), "US"),
      std::invalid_argument);
}

TEST(GeoDb, EmptyDbReturnsUnknown) {
  GeoDb db;
  db.build();
  EXPECT_EQ(db.country_of(net::IPv4Addr(1, 1, 1, 1)), "??");
}

TEST(GeoDb, ManyDisjointRanges) {
  GeoDb db;
  for (int i = 1; i < 200; ++i)
    db.add_prefix(net::Prefix(net::IPv4Addr(static_cast<std::uint8_t>(i), 0, 0, 0), 8),
                  i % 2 ? "US" : "IN");
  db.build();
  EXPECT_EQ(db.country_of(net::IPv4Addr(33, 1, 1, 1)), "US");
  EXPECT_EQ(db.country_of(net::IPv4Addr(34, 1, 1, 1)), "IN");
}

// ---- OrgDb ----------------------------------------------------------------------

TEST(OrgDb, PrivateNetworksShortCircuit) {
  OrgDb db;
  db.build();
  EXPECT_EQ(db.org_of(net::IPv4Addr(192, 168, 1, 1)), "private network");
  EXPECT_EQ(db.org_of(net::IPv4Addr(10, 0, 0, 1)), "private network");
  EXPECT_EQ(db.org_of(net::IPv4Addr(172, 30, 1, 254)), "private network");
}

TEST(OrgDb, RegisteredOrgFound) {
  OrgDb db;
  const auto addr = *net::IPv4Addr::parse("216.194.64.193");
  db.add_range(addr, addr, "Tera-byte Dot Com");
  db.build();
  EXPECT_EQ(db.org_of(addr), "Tera-byte Dot Com");
  EXPECT_EQ(db.org_of(net::IPv4Addr(216, 194, 64, 194)), "unknown");
}

TEST(OrgDb, NestedAllocationNarrowestWins) {
  OrgDb db;
  db.add_prefix(*net::Prefix::parse("74.220.0.0/16"), "BigISP");
  db.add_prefix(*net::Prefix::parse("74.220.199.0/24"), "Unified Layer");
  db.build();
  EXPECT_EQ(db.org_of(net::IPv4Addr(74, 220, 199, 15)), "Unified Layer");
  EXPECT_EQ(db.org_of(net::IPv4Addr(74, 220, 1, 1)), "BigISP");
}

TEST(OrgDb, UnbuiltReturnsUnknown) {
  OrgDb db;
  db.add_prefix(*net::Prefix::parse("74.220.0.0/16"), "BigISP");
  EXPECT_EQ(db.org_of(net::IPv4Addr(74, 220, 1, 1)), "unknown");
}

}  // namespace
}  // namespace orp::intel
