// Property tests for the IPF calibrator: for *feasible* margins (derived
// from an actual joint distribution), iterative proportional fitting must
// reproduce every margin — not just the paper's specific numbers.
#include <gtest/gtest.h>

#include "core/ipf.h"
#include "util/rng.h"

namespace orp::core {
namespace {

/// Build a random ground-truth joint over (RA, AA, rcode in a small set,
/// class) and read its margins into CalibrationTargets. The targets are
/// feasible by construction.
CalibrationTargets random_feasible_targets(std::uint64_t seed,
                                           std::uint64_t scale) {
  util::Rng rng(seed);
  static constexpr dns::Rcode kRcodes[] = {
      dns::Rcode::kNoError, dns::Rcode::kServFail, dns::Rcode::kNXDomain,
      dns::Rcode::kRefused, dns::Rcode::kNotAuth};

  CalibrationTargets t{};
  for (int ra = 0; ra < 2; ++ra) {
    for (int aa = 0; aa < 2; ++aa) {
      for (const dns::Rcode rc : kRcodes) {
        for (int cls = 0; cls < kAnsClassCount; ++cls) {
          // Malicious cells only at NoError (the structural zero the
          // calibrator enforces).
          if (cls == static_cast<int>(AnsClass::kIncorrectMalicious) &&
              rc != dns::Rcode::kNoError)
            continue;
          const std::uint64_t count = rng.bounded(scale);
          if (count == 0) continue;

          analysis::FlagBreakdown& ra_row = ra ? t.ra.bit1 : t.ra.bit0;
          analysis::FlagBreakdown& aa_row = aa ? t.aa.bit1 : t.aa.bit0;
          analysis::RcodeRow& rc_row =
              t.rcodes.rows[static_cast<std::size_t>(rc)];
          switch (static_cast<AnsClass>(cls)) {
            case AnsClass::kNone:
              ra_row.without_answer += count;
              aa_row.without_answer += count;
              rc_row.without_answer += count;
              t.answers.without_answer += count;
              break;
            case AnsClass::kCorrect:
              ra_row.correct += count;
              aa_row.correct += count;
              rc_row.with_answer += count;
              t.answers.correct += count;
              break;
            case AnsClass::kIncorrectBenign:
              ra_row.incorrect += count;
              aa_row.incorrect += count;
              rc_row.with_answer += count;
              t.answers.incorrect += count;
              break;
            case AnsClass::kIncorrectMalicious:
              ra_row.incorrect += count;
              aa_row.incorrect += count;
              rc_row.with_answer += count;
              t.answers.incorrect += count;
              if (ra)
                t.mal_ra1 += count;
              else
                t.mal_ra0 += count;
              if (aa)
                t.mal_aa1 += count;
              else
                t.mal_aa0 += count;
              break;
          }
        }
      }
    }
  }
  t.answers.r2 =
      t.answers.without_answer + t.answers.correct + t.answers.incorrect;
  return t;
}

class IpfPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpfPropertySweep, FeasibleMarginsAreReproduced) {
  const CalibrationTargets t = random_feasible_targets(GetParam(), 50000);
  const IpfResult result = calibrate_joint(t);
  EXPECT_LT(result.max_margin_error, 1e-8);
  EXPECT_EQ(result.total, t.answers.r2);

  const auto ra = result.ra_margin();
  EXPECT_NEAR(static_cast<double>(ra.bit0.without_answer),
              static_cast<double>(t.ra.bit0.without_answer), 8.0);
  EXPECT_NEAR(static_cast<double>(ra.bit1.correct),
              static_cast<double>(t.ra.bit1.correct), 8.0);
  EXPECT_NEAR(static_cast<double>(ra.bit0.incorrect),
              static_cast<double>(t.ra.bit0.incorrect), 8.0);
  const auto aa = result.aa_margin();
  EXPECT_NEAR(static_cast<double>(aa.bit1.correct),
              static_cast<double>(t.aa.bit1.correct), 8.0);
  const auto rc = result.rcode_margin();
  for (std::size_t i = 0; i < rc.rows.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(rc.rows[i].with_answer),
                static_cast<double>(t.rcodes.rows[i].with_answer), 8.0)
        << "rcode " << i;
  }
}

TEST_P(IpfPropertySweep, MaliciousStructuralZeroHolds) {
  const CalibrationTargets t = random_feasible_targets(GetParam() + 77, 20000);
  const IpfResult result = calibrate_joint(t);
  std::uint64_t mal_ra0 = 0;
  std::uint64_t mal_aa1 = 0;
  for (const JointCell& c : result.cells) {
    if (c.cls != AnsClass::kIncorrectMalicious) continue;
    EXPECT_EQ(c.rcode, dns::Rcode::kNoError);
    if (!c.ra) mal_ra0 += c.count;
    if (c.aa) mal_aa1 += c.count;
  }
  EXPECT_NEAR(static_cast<double>(mal_ra0), static_cast<double>(t.mal_ra0),
              8.0);
  EXPECT_NEAR(static_cast<double>(mal_aa1), static_cast<double>(t.mal_aa1),
              8.0);
}

TEST_P(IpfPropertySweep, CellsAreNonNegativeAndClassConsistent) {
  const CalibrationTargets t = random_feasible_targets(GetParam() + 191, 30000);
  const IpfResult result = calibrate_joint(t);
  std::uint64_t by_class[kAnsClassCount] = {};
  for (const JointCell& c : result.cells) {
    EXPECT_GT(c.count, 0u);  // zero cells are omitted from the result
    by_class[static_cast<int>(c.cls)] += c.count;
  }
  EXPECT_NEAR(static_cast<double>(by_class[0]),
              static_cast<double>(t.answers.without_answer), 8.0);
  EXPECT_NEAR(static_cast<double>(by_class[1]),
              static_cast<double>(t.answers.correct), 8.0);
  EXPECT_NEAR(static_cast<double>(by_class[2] + by_class[3]),
              static_cast<double>(t.answers.incorrect), 8.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpfPropertySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(IpfProperty, DegenerateAllInOneCell) {
  // A population that is 100% refusers must fit trivially.
  CalibrationTargets t{};
  t.answers.r2 = 1000;
  t.answers.without_answer = 1000;
  t.ra.bit0.without_answer = 1000;
  t.aa.bit0.without_answer = 1000;
  t.rcodes.rows[static_cast<std::size_t>(dns::Rcode::kRefused)]
      .without_answer = 1000;
  const IpfResult result = calibrate_joint(t);
  EXPECT_EQ(result.total, 1000u);
  EXPECT_LT(result.max_margin_error, 1e-9);
}

}  // namespace
}  // namespace orp::core
