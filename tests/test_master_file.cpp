#include <gtest/gtest.h>

#include "zone/cluster.h"
#include "zone/master_file.h"

namespace orp::zone {
namespace {

constexpr const char* kSample = R"($ORIGIN ucfsealresearch.net.
$TTL 300
@   3600 IN SOA ns1 hostmaster ( 2018042601 7200 900
                                 1209600 300 ) ; paren-wrapped counters
    IN NS ns1
ns1 IN A 45.76.18.21
www 60 IN A 93.184.216.34
or000.0000001 IN A 10.11.12.13 ; probe subdomain
alias IN CNAME www
mail IN MX 10 mx1.ucfsealresearch.net.
@ IN TXT "v=spf1 -all" "second string"
)";

TEST(MasterFile, ParsesTheWholeSample) {
  const auto parsed = parse_master_file(kSample);
  ASSERT_TRUE(parsed.has_value())
      << parsed.error().line << ": " << parsed.error().message;
  const Zone& zone = parsed.value();
  EXPECT_EQ(zone.origin().to_string(), "ucfsealresearch.net");
  EXPECT_EQ(zone.soa().serial, 2018042601u);
  EXPECT_EQ(zone.soa().minimum, 300u);

  const auto www = zone.lookup(dns::DnsName::must_parse("www.ucfsealresearch.net"),
                               dns::RRType::kA);
  ASSERT_EQ(www.status, LookupStatus::kAnswer);
  EXPECT_EQ(www.records[0].ttl, 60u);

  const auto probe = zone.lookup(
      dns::DnsName::must_parse("or000.0000001.ucfsealresearch.net"),
      dns::RRType::kA);
  EXPECT_EQ(probe.status, LookupStatus::kAnswer);

  const auto alias = zone.lookup(
      dns::DnsName::must_parse("alias.ucfsealresearch.net"),
      dns::RRType::kCNAME);
  ASSERT_EQ(alias.status, LookupStatus::kAnswer);

  const auto txt = zone.lookup(zone.origin(), dns::RRType::kTXT);
  ASSERT_EQ(txt.status, LookupStatus::kAnswer);
  const auto* strings = std::get_if<dns::TxtRdata>(&txt.records[0].rdata);
  ASSERT_NE(strings, nullptr);
  ASSERT_EQ(strings->strings.size(), 2u);
  EXPECT_EQ(strings->strings[0], "v=spf1 -all");
}

TEST(MasterFile, RelativeNamesResolveAgainstOrigin) {
  const auto parsed = parse_master_file(kSample);
  ASSERT_TRUE(parsed.has_value());
  const auto mx = parsed.value().lookup(
      dns::DnsName::must_parse("mail.ucfsealresearch.net"), dns::RRType::kMX);
  ASSERT_EQ(mx.status, LookupStatus::kAnswer);
  const auto* data = std::get_if<dns::MxRdata>(&mx.records[0].rdata);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->exchange.to_string(), "mx1.ucfsealresearch.net");
}

TEST(MasterFile, DefaultOriginParameterWorks) {
  const auto parsed = parse_master_file(
      "@ IN SOA ns1 hm 1 2 3 4 5\nwww IN A 1.2.3.4\n",
      dns::DnsName::must_parse("example.net"));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value().origin().to_string(), "example.net");
}

TEST(MasterFile, RejectsZoneWithoutSoa) {
  const auto parsed = parse_master_file("$ORIGIN x.net.\nwww IN A 1.2.3.4\n");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("SOA"), std::string::npos);
}

TEST(MasterFile, RejectsDuplicateSoa) {
  const auto parsed = parse_master_file(
      "$ORIGIN x.net.\n@ IN SOA a b 1 2 3 4 5\n@ IN SOA a b 1 2 3 4 5\n");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("duplicate"), std::string::npos);
}

TEST(MasterFile, RejectsBadAddressWithLineNumber) {
  const auto parsed = parse_master_file(
      "$ORIGIN x.net.\n@ IN SOA a b 1 2 3 4 5\nwww IN A 999.1.1.1\n");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().line, 3);
}

TEST(MasterFile, RejectsOutOfZoneRecord) {
  const auto parsed = parse_master_file(
      "$ORIGIN x.net.\n@ IN SOA a b 1 2 3 4 5\nwww.other.org. IN A 1.1.1.1\n");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("outside"), std::string::npos);
}

TEST(MasterFile, RejectsUnsupportedType) {
  const auto parsed = parse_master_file(
      "$ORIGIN x.net.\n@ IN SOA a b 1 2 3 4 5\nwww IN NAPTR foo\n");
  ASSERT_FALSE(parsed.has_value());
}

TEST(MasterFile, RoundTripsThroughSerialization) {
  const auto parsed = parse_master_file(kSample);
  ASSERT_TRUE(parsed.has_value());
  const std::string text = to_master_file(parsed.value());
  const auto reparsed = parse_master_file(text);
  ASSERT_TRUE(reparsed.has_value())
      << reparsed.error().line << ": " << reparsed.error().message;
  EXPECT_EQ(to_master_file(reparsed.value()), text);  // fixed point
  EXPECT_EQ(reparsed.value().name_count(), parsed.value().name_count());
  EXPECT_EQ(reparsed.value().soa().serial, 2018042601u);
}

TEST(MasterFile, GeneratedProbeClusterRoundTrips) {
  // The shape the measurement generates: a zone file of probe subdomains.
  const SubdomainScheme scheme(dns::DnsName::must_parse("ucfsealresearch.net"),
                               1000, 3);
  std::string text = "$ORIGIN ucfsealresearch.net.\n$TTL 300\n"
                     "@ IN SOA ns1 hostmaster 1 7200 900 1209600 300\n";
  for (std::uint32_t i = 0; i < 50; ++i) {
    const SubdomainId id{0, i};
    text += scheme.qname(id).to_string() + ". 300 IN A " +
            scheme.ground_truth(id).to_string() + "\n";
  }
  const auto parsed = parse_master_file(text);
  ASSERT_TRUE(parsed.has_value());
  for (std::uint32_t i = 0; i < 50; ++i) {
    const SubdomainId id{0, i};
    const auto result =
        parsed.value().lookup(scheme.qname(id), dns::RRType::kA);
    ASSERT_EQ(result.status, LookupStatus::kAnswer) << i;
    const auto* a = std::get_if<dns::ARdata>(&result.records[0].rdata);
    EXPECT_EQ(a->addr, scheme.ground_truth(id));
  }
}

TEST(MasterFile, CommentsAndBlankLinesIgnored)
{
  const auto parsed = parse_master_file(
      "; leading comment\n\n$ORIGIN x.net.\n"
      "@ IN SOA a b 1 2 3 4 5 ; trailing\n\n; another\nwww IN A 1.1.1.1\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed.value()
                .lookup(dns::DnsName::must_parse("www.x.net"), dns::RRType::kA)
                .status,
            LookupStatus::kAnswer);
}

}  // namespace
}  // namespace orp::zone
