#include <gtest/gtest.h>

#include "core/monitor.h"

namespace orp::core {
namespace {

TEST(Interpolation, EndpointsAreTheCalibratedYears) {
  const PaperYear at0 = interpolate_year(paper_2013(), paper_2018(), 0.0);
  EXPECT_EQ(at0.r2, paper_2013().r2);
  EXPECT_EQ(at0.malicious_r2, paper_2013().malicious_r2);
  const PaperYear at1 = interpolate_year(paper_2013(), paper_2018(), 1.0);
  EXPECT_EQ(at1.r2, paper_2018().r2);
  EXPECT_EQ(at1.top10.size(), paper_2018().top10.size());
}

TEST(Interpolation, MidpointBetweenEndpoints) {
  const PaperYear mid = interpolate_year(paper_2013(), paper_2018(), 0.5);
  EXPECT_GT(mid.r2, paper_2018().r2);
  EXPECT_LT(mid.r2, paper_2013().r2);
  EXPECT_GT(mid.malicious_r2, paper_2013().malicious_r2);
  EXPECT_LT(mid.malicious_r2, paper_2018().malicious_r2);
  // Identities the population builder depends on hold after rounding.
  EXPECT_EQ(mid.answers.r2,
            mid.answers.without_answer + mid.answers.with_answer());
  EXPECT_EQ(mid.r2, mid.answers.r2 + mid.empty_question);
  EXPECT_EQ(mid.mal_ra0 + mid.mal_ra1, mid.malicious_r2);
  std::uint64_t cat_r2 = 0;
  for (const auto& c : mid.categories) cat_r2 += c.r2;
  EXPECT_EQ(cat_r2, mid.malicious_r2);
}

TEST(Interpolation, MidpointPopulationIsBuildable) {
  const PaperYear mid = interpolate_year(paper_2013(), paper_2018(), 0.5);
  const PopulationSpec spec = build_population(mid, 4096, 11);
  EXPECT_GT(spec.hosts.size(), 0u);
  // Host count tracks the interpolated R2.
  const double expected = static_cast<double>(mid.answers.r2) / 4096.0;
  EXPECT_NEAR(static_cast<double>(spec.hosts.size()), expected,
              expected * 0.05 + 4);
}

TEST(Interpolation, CountryUnionCoversBothYears) {
  const PaperYear mid = interpolate_year(paper_2013(), paper_2018(), 0.5);
  bool has_tr = false;  // 2013-heavy country
  bool has_in = false;  // 2018-heavy country
  for (const auto& c : mid.countries) {
    has_tr |= c.country == "TR";
    has_in |= c.country == "IN";
  }
  EXPECT_TRUE(has_tr);
  EXPECT_TRUE(has_in);
}

TEST(Monitoring, SeriesShowsTheSectionFiveTrends) {
  MonitoringConfig config;
  config.snapshots = 3;
  config.scale = 2048;
  config.seed = 42;
  const MonitoringSeries series = run_monitoring(config);
  ASSERT_EQ(series.snapshots.size(), 3u);
  EXPECT_EQ(series.snapshots.front().label, "2013-10");
  EXPECT_EQ(series.snapshots.back().label, "2018-04");
  EXPECT_TRUE(series.open_resolver_decline());
  EXPECT_TRUE(series.malicious_growth());
  // Error rate rises monotonically across the drift.
  EXPECT_LT(series.snapshots.front().err_percent,
            series.snapshots.back().err_percent);
  const std::string text = render_monitoring(series);
  EXPECT_NE(text.find("decline=yes"), std::string::npos);
}

}  // namespace
}  // namespace orp::core
