#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/buffer_pool.h"
#include "net/capture.h"
#include "net/capture_store.h"
#include "net/event_loop.h"
#include "net/ipv4.h"
#include "net/reserved.h"
#include "net/sim_time.h"
#include "net/transport.h"

namespace orp::net {
namespace {

// ---- IPv4Addr ----------------------------------------------------------------

TEST(IPv4Addr, FormatAndParseRoundTrip) {
  for (const char* s : {"0.0.0.0", "1.2.3.4", "255.255.255.255", "10.0.0.1",
                        "192.168.1.254", "132.170.3.44"}) {
    const auto parsed = IPv4Addr::parse(s);
    ASSERT_TRUE(parsed.has_value()) << s;
    EXPECT_EQ(parsed->to_string(), s);
  }
}

TEST(IPv4Addr, RejectsMalformed) {
  for (const char* s : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x",
                        "01.2.3.4", " 1.2.3.4", "1.2.3.4 ", "-1.2.3.4"}) {
    EXPECT_FALSE(IPv4Addr::parse(s).has_value()) << s;
  }
}

TEST(IPv4Addr, OctetAccess) {
  const IPv4Addr a(192, 168, 1, 254);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(3), 254);
  EXPECT_EQ(a.value(), 0xC0A801FEu);
}

TEST(IPv4Addr, Ordering) {
  EXPECT_LT(IPv4Addr(1, 0, 0, 0), IPv4Addr(2, 0, 0, 0));
  EXPECT_EQ(IPv4Addr(0x01020304), IPv4Addr(1, 2, 3, 4));
}

// ---- Prefix --------------------------------------------------------------------

TEST(Prefix, ContainsAndSize) {
  const Prefix p(IPv4Addr(192, 168, 0, 0), 16);
  EXPECT_TRUE(p.contains(IPv4Addr(192, 168, 255, 255)));
  EXPECT_FALSE(p.contains(IPv4Addr(192, 169, 0, 0)));
  EXPECT_EQ(p.size(), 65536u);
}

TEST(Prefix, MasksBaseDown) {
  const Prefix p(IPv4Addr(10, 20, 30, 40), 8);
  EXPECT_EQ(p.base(), IPv4Addr(10, 0, 0, 0));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix p(IPv4Addr(1, 2, 3, 4), 0);
  EXPECT_TRUE(p.contains(IPv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::parse("198.18.0.0/15");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "198.18.0.0/15");
  EXPECT_FALSE(Prefix::parse("1.2.3.4").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Prefix::parse("bogus/8").has_value());
}

TEST(PrivateAddress, Rfc1918AndCgn) {
  EXPECT_TRUE(is_private_address(IPv4Addr(10, 0, 0, 1)));
  EXPECT_TRUE(is_private_address(IPv4Addr(172, 30, 1, 254)));
  EXPECT_TRUE(is_private_address(IPv4Addr(192, 168, 2, 1)));
  EXPECT_TRUE(is_private_address(IPv4Addr(100, 64, 0, 1)));
  EXPECT_FALSE(is_private_address(IPv4Addr(8, 8, 8, 8)));
  EXPECT_FALSE(is_private_address(IPv4Addr(172, 32, 0, 1)));
}

// ---- Reserved ranges (Table I) -------------------------------------------------

TEST(Reserved, TableHasSixteenBlocks) {
  EXPECT_EQ(reserved_blocks().size(), 16u);
}

TEST(Reserved, BlockSumMatchesRecomputedTotal) {
  std::uint64_t total = 0;
  for (const auto& b : reserved_blocks()) total += b.prefix.size();
  EXPECT_EQ(total, reserved_address_count());
  EXPECT_EQ(total, 592708865ULL);
}

TEST(Reserved, PaperTotalIsShortByExactlyOneSlashEight) {
  EXPECT_EQ(reserved_address_count() - paper_table1_total(), 16777216ULL);
}

TEST(Reserved, ProbeableMatchesPaperQ1) {
  // The 2018 Q1 count of Table II is exactly the non-reserved space.
  EXPECT_EQ(probeable_address_count(), 3702258432ULL);
}

struct ReservedCase {
  const char* member;
  const char* outside;
};

class ReservedMembership : public ::testing::TestWithParam<ReservedCase> {};

TEST_P(ReservedMembership, MemberInOutsideOut) {
  const auto& c = GetParam();
  EXPECT_TRUE(is_reserved(*IPv4Addr::parse(c.member))) << c.member;
  EXPECT_FALSE(is_reserved(*IPv4Addr::parse(c.outside))) << c.outside;
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, ReservedMembership,
    ::testing::Values(ReservedCase{"0.255.255.255", "1.0.0.0"},
                      ReservedCase{"10.1.2.3", "11.0.0.0"},
                      ReservedCase{"100.64.0.0", "100.128.0.0"},
                      ReservedCase{"127.0.0.1", "128.0.0.1"},
                      ReservedCase{"169.254.17.1", "169.255.0.0"},
                      ReservedCase{"172.16.0.1", "172.32.0.0"},
                      ReservedCase{"192.0.0.8", "192.0.1.1"},
                      ReservedCase{"192.0.2.55", "192.0.3.0"},
                      ReservedCase{"192.88.99.1", "192.88.100.1"},
                      ReservedCase{"192.168.255.1", "192.169.0.0"},
                      ReservedCase{"198.19.255.255", "198.20.0.0"},
                      ReservedCase{"198.51.100.25", "198.51.101.1"},
                      ReservedCase{"203.0.113.99", "203.0.114.1"},
                      ReservedCase{"224.0.0.1", "223.255.255.255"},
                      ReservedCase{"240.0.0.1", "223.255.255.254"},
                      ReservedCase{"255.255.255.255", "8.8.8.8"}));

TEST(Reserved, OctetTableMatchesBlockScan) {
  // The first-octet fast path must agree with the full Table I block scan
  // everywhere. Sweep the 32-bit space with a coprime stride (plus each
  // block's edges) so every first octet and every partial block is hit.
  const auto slow = [](IPv4Addr a) {
    for (const auto& b : reserved_blocks())
      if (b.prefix.contains(a)) return true;
    return false;
  };
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << 32); v += 65537) {
    const IPv4Addr a(static_cast<std::uint32_t>(v));
    ASSERT_EQ(is_reserved(a), slow(a)) << a.to_string();
  }
  for (const auto& b : reserved_blocks()) {
    EXPECT_TRUE(is_reserved(IPv4Addr(b.prefix.first())));
    EXPECT_TRUE(is_reserved(IPv4Addr(b.prefix.last())));
    if (b.prefix.first() != 0) {
      EXPECT_EQ(is_reserved(IPv4Addr(b.prefix.first() - 1)),
                slow(IPv4Addr(b.prefix.first() - 1)));
    }
    if (b.prefix.last() != 0xFFFFFFFFu) {
      EXPECT_EQ(is_reserved(IPv4Addr(b.prefix.last() + 1)),
                slow(IPv4Addr(b.prefix.last() + 1)));
    }
  }
}

// ---- SimTime -------------------------------------------------------------------

TEST(SimTime, ArithmeticAndConversions) {
  const SimTime t = SimTime::seconds(1.5) + SimTime::millis(500);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 2.0);
  EXPECT_EQ(SimTime::micros(3).as_nanos(), 3000);
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_EQ((SimTime::seconds(2.0) - SimTime::seconds(0.5)).as_nanos(),
            1'500'000'000);
}

// ---- EventLoop -----------------------------------------------------------------

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  loop.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  loop.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime::millis(30));
}

TEST(EventLoop, TieBrokenByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    loop.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, ActionsCanScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> reschedule = [&]() {
    if (++count < 5) loop.schedule_in(SimTime::millis(1), reschedule);
  };
  loop.schedule_in(SimTime::millis(1), reschedule);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), SimTime::millis(5));
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  SimTime seen;
  loop.schedule_at(SimTime::millis(10), [&] {
    loop.schedule_at(SimTime::millis(1), [&] { seen = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(seen, SimTime::millis(10));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(SimTime::seconds(1.0), [&] { ++ran; });
  loop.schedule_at(SimTime::seconds(3.0), [&] { ++ran; });
  const auto executed = loop.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), SimTime::seconds(2.0));
  loop.run();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, RunUntilExecutesEventExactlyAtDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(SimTime::seconds(2.0), [&] { ++ran; });  // == deadline
  loop.schedule_at(SimTime::seconds(2.0) + SimTime::nanos(1), [&] { ++ran; });
  const auto executed = loop.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), SimTime::seconds(2.0));
  EXPECT_EQ(loop.pending(), 1u);
}

// Heap-order stress for the explicit binary heap: interleaved timestamps with
// heavy ties must come out sorted by (time, insertion sequence) — including
// ties created *while running*, which land after existing same-time events.
TEST(EventLoop, HeapOrdersInterleavedSchedulesByTimeThenSequence) {
  EventLoop loop;
  std::vector<std::pair<int, int>> order;  // (millis, tag)
  const int times[] = {5, 3, 5, 1, 3, 5, 2, 1, 4, 2};
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(SimTime::millis(times[i]),
                     [&order, t = times[i], i] { order.push_back({t, i}); });
  }
  // A running action scheduling at its own timestamp runs after every event
  // already queued for that time (fresh sequence number).
  loop.schedule_at(SimTime::millis(3), [&] {
    loop.schedule_at(SimTime::millis(3), [&] { order.push_back({3, 99}); });
  });
  loop.run();
  ASSERT_EQ(order.size(), 11u);
  std::vector<std::pair<int, int>> expected = order;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_EQ(order, expected);
  // Within each timestamp, tags ascend in insertion order.
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i - 1].first == order[i].first) {
      EXPECT_LT(order[i - 1].second, order[i].second);
    }
  }
  EXPECT_EQ(order.back(), (std::pair<int, int>{5, 5}));
}

// Sharding contract: the tie-break sequence counter is a per-instance
// member. Interleaving insertions across two loops must not perturb either
// loop's "ties broken by insertion sequence" order — the property every
// shard's bit-reproducibility rests on.
TEST(EventLoop, TieBreakSequenceIsInstanceLocal) {
  EventLoop a, b;
  std::vector<int> order_a, order_b;
  for (int i = 0; i < 8; ++i) {
    a.schedule_at(SimTime::millis(7), [&order_a, i] { order_a.push_back(i); });
    b.schedule_at(SimTime::millis(7),
                  [&order_b, i] { order_b.push_back(100 + i); });
  }
  b.run();  // draining one loop first must not affect the other
  a.run();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order_a[i], i);
    EXPECT_EQ(order_b[i], 100 + i);
  }
  EXPECT_EQ(a.executed(), 8u);
  EXPECT_EQ(b.executed(), 8u);
}

TEST(EventLoop, RunUntilIsInstanceLocal) {
  EventLoop a, b;
  a.schedule_at(SimTime::seconds(5.0), [] {});
  b.schedule_at(SimTime::seconds(1.0), [] {});
  a.run_until(SimTime::seconds(3.0));
  EXPECT_EQ(a.now(), SimTime::seconds(3.0));
  EXPECT_EQ(b.now(), SimTime());  // untouched sibling shard clock
  EXPECT_EQ(a.executed(), 0u);
  b.run();
  EXPECT_EQ(b.now(), SimTime::seconds(1.0));
  EXPECT_EQ(a.pending(), 1u);
}

// ---- Network --------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  EventLoop loop;
  Network net{loop, 99};
  const Endpoint a{IPv4Addr(1, 1, 1, 1), 53};
  const Endpoint b{IPv4Addr(2, 2, 2, 2), 53};
};

TEST_F(NetworkTest, DeliversToBoundEndpoint) {
  std::vector<std::uint8_t> received;
  net.bind(b, [&](const Datagram& d) { received = d.payload.to_vector(); });
  net.send(Datagram{a, b, {1, 2, 3}});
  loop.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(net.delivered(), 1u);
}

TEST_F(NetworkTest, DropsWhenUnbound) {
  net.send(Datagram{a, b, {1}});
  loop.run();
  EXPECT_EQ(net.dropped_unbound(), 1u);
  EXPECT_EQ(net.delivered(), 0u);
}

TEST_F(NetworkTest, UnbindMidFlightDropsPacket) {
  net.bind(b, [](const Datagram&) { FAIL() << "should not deliver"; });
  net.send(Datagram{a, b, {1}});
  net.unbind(b);
  loop.run();
  EXPECT_EQ(net.dropped_unbound(), 1u);
}

TEST_F(NetworkTest, LatencyWithinConfiguredBounds) {
  net.set_latency({SimTime::millis(10), SimTime::millis(5)});
  SimTime arrival;
  net.bind(b, [&](const Datagram&) { arrival = loop.now(); });
  net.send(Datagram{a, b, {1}});
  loop.run();
  EXPECT_GE(arrival, SimTime::millis(10));
  EXPECT_LT(arrival, SimTime::millis(15));
}

TEST_F(NetworkTest, LossRateDropsEverythingAtOne) {
  net.set_loss_rate(1.0);
  net.bind(b, [](const Datagram&) { FAIL(); });
  for (int i = 0; i < 50; ++i) net.send(Datagram{a, b, {1}});
  loop.run();
  EXPECT_EQ(net.dropped_loss(), 50u);
}

TEST_F(NetworkTest, TapsSeeEveryAcceptedPacket) {
  int taps = 0;
  net.add_tap([&](SimTime, const Datagram&) { ++taps; });
  net.send(Datagram{a, b, {1}});  // unbound, still tapped
  net.bind(b, [](const Datagram&) {});
  net.send(Datagram{a, b, {2}});
  loop.run();
  EXPECT_EQ(taps, 2);
}

// Taps model the capture vantage on the sender's wire, so they observe every
// accepted packet *before* the loss coin-flip — a lossy link must not thin
// out the capture.
TEST_F(NetworkTest, TapsObservePacketsBeforeLoss) {
  net.set_loss_rate(1.0);
  net.bind(b, [](const Datagram&) { FAIL() << "loss=1.0 must drop all"; });
  int tapped = 0;
  net.add_tap([&](SimTime, const Datagram& d) {
    ++tapped;
    EXPECT_EQ(d.payload.size(), 1u);
  });
  for (int i = 0; i < 20; ++i) net.send(Datagram{a, b, {7}});
  loop.run();
  EXPECT_EQ(tapped, 20);
  EXPECT_EQ(net.dropped_loss(), 20u);
  EXPECT_EQ(net.delivered(), 0u);
}

// The payload pool recycles slabs through the send→deliver cycle: sequential
// sends reuse one buffer instead of growing the pool.
TEST_F(NetworkTest, PayloadPoolRecyclesAcrossSequentialSends) {
  net.bind(b, [](const Datagram&) {});
  const std::vector<std::uint8_t> wire{1, 2, 3, 4};
  for (int i = 0; i < 100; ++i) {
    net.send(a, b, wire);
    loop.run();  // drain: the in-flight ref releases back to the free list
  }
  EXPECT_EQ(net.delivered(), 100u);
  EXPECT_EQ(net.pool().slab_count(), 1u);
  EXPECT_EQ(net.pool().free_count(), 1u);
}

// Taps (and the capture store behind them) may retain a reference past the
// datagram's lifetime; the bytes must stay valid until the last ref drops.
TEST_F(NetworkTest, PayloadRefKeepsBytesAliveAfterDelivery) {
  PayloadRef kept;
  net.add_tap([&](SimTime, const Datagram& d) { kept = d.payload; });
  net.bind(b, [](const Datagram&) {});
  const std::vector<std::uint8_t> wire{9, 8, 7};
  net.send(a, b, wire);
  loop.run();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0], 9);
  // The slab is still checked out, so a new send gets a second slab.
  net.send(a, b, wire);
  loop.run();
  EXPECT_EQ(net.pool().slab_count(), 2u);
}

TEST_F(NetworkTest, RebindReplacesHandler) {
  int first = 0;
  int second = 0;
  net.bind(b, [&](const Datagram&) { ++first; });
  net.bind(b, [&](const Datagram&) { ++second; });
  net.send(Datagram{a, b, {1}});
  loop.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

// ---- Batched dispatch ------------------------------------------------------

// send_batch() is *defined* as equivalent to per-packet send(): same RNG
// draw order, same delivery times, same arrival order — under loss and
// jitter. Two networks with identical seeds, one per mode, must agree.
TEST(NetworkBatch, SendBatchBitIdenticalToPerPacketSends) {
  const auto run = [](bool batched) {
    EventLoop loop;
    Network net(loop, 12345);
    net.set_latency({SimTime::millis(5), SimTime::millis(7)});
    net.set_loss_rate(0.3);
    const Endpoint src{IPv4Addr(1, 1, 1, 1), 9000};
    const Endpoint dst{IPv4Addr(2, 2, 2, 2), 53};
    std::vector<std::pair<std::int64_t, int>> arrivals;
    net.bind(dst, [&](const Datagram& d) {
      arrivals.emplace_back(loop.now().as_nanos(), d.payload[0]);
    });
    std::vector<std::vector<std::uint8_t>> payloads;
    for (int i = 0; i < 64; ++i)
      payloads.push_back({static_cast<std::uint8_t>(i)});
    if (batched) {
      std::vector<PacketView> pkts;
      for (const auto& p : payloads) pkts.push_back({src, dst, p});
      net.send_batch(pkts);
    } else {
      for (const auto& p : payloads) net.send(src, dst, p);
    }
    loop.run();
    return std::tuple(arrivals, net.delivered(), net.dropped_loss());
  };
  EXPECT_EQ(run(false), run(true));
}

// Grouping never reorders against other events: a grouped delivery carries
// the tie-break seq of its *first* member, so a timer scheduled before the
// batch fires before it and one scheduled after fires after it, at the
// same simulated instant.
TEST_F(NetworkTest, BatchedSendPreservesTieBreakAcrossBoundaries) {
  net.set_latency({SimTime::millis(10), SimTime()});  // deterministic time
  std::vector<std::string> order;
  net.bind_batch(
      b,
      [&](const Datagram& d) {
        order.push_back("single:" + std::to_string(d.payload[0]));
      },
      [&](const DatagramBatch& g) {
        for (std::size_t i = 0; i < g.size(); ++i)
          order.push_back("batch:" + std::to_string(g.payloads[i][0]));
      });
  loop.schedule_at(SimTime::millis(10), [&] { order.push_back("before"); });
  const std::vector<std::uint8_t> p1{1};
  const std::vector<std::uint8_t> p2{2};
  const PacketView pkts[] = {{a, b, p1}, {a, b, p2}};
  net.send_batch(pkts);
  loop.schedule_at(SimTime::millis(10), [&] { order.push_back("after"); });
  loop.run();
  EXPECT_EQ(order, (std::vector<std::string>{"before", "batch:1", "batch:2",
                                             "after"}));
}

// An endpoint bound with plain bind() still receives grouped traffic, item
// by item, counted as fallback singles.
TEST_F(NetworkTest, BatchFallsBackToSingleHandlerPerItem) {
  net.set_latency({SimTime::millis(10), SimTime()});
  std::vector<int> seen;
  net.bind(b, [&](const Datagram& d) { seen.push_back(d.payload[0]); });
  const std::vector<std::uint8_t> p1{1};
  const std::vector<std::uint8_t> p2{2};
  const std::vector<std::uint8_t> p3{3};
  const PacketView pkts[] = {{a, b, p1}, {a, b, p2}, {a, b, p3}};
  net.send_batch(pkts);
  loop.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net.delivered(), 3u);
  EXPECT_EQ(net.batch_fallback_singles(), 3u);
}

// A handler that unbinds itself mid-group drops the rest of the group,
// exactly as the per-packet path would (each item re-checks the binding).
TEST_F(NetworkTest, FallbackRechecksBindingBetweenItems) {
  net.set_latency({SimTime::millis(10), SimTime()});
  int got = 0;
  net.bind(b, [&](const Datagram&) {
    ++got;
    net.unbind(b);
  });
  const std::vector<std::uint8_t> p{7};
  const PacketView pkts[] = {{a, b, p}, {a, b, p}, {a, b, p}};
  net.send_batch(pkts);
  loop.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.delivered(), 1u);
  EXPECT_EQ(net.dropped_unbound(), 2u);
}

// The group cap splits one logical burst into several delivery events
// without changing arrival order or times.
TEST_F(NetworkTest, GroupCapSplitsDeliveriesInvisibly) {
  net.set_latency({SimTime::millis(10), SimTime()});
  net.set_delivery_group_cap(2);
  std::vector<std::size_t> sizes;
  std::vector<int> order;
  net.bind_batch(
      b, [](const Datagram&) {},
      [&](const DatagramBatch& g) {
        sizes.push_back(g.size());
        for (std::size_t i = 0; i < g.size(); ++i)
          order.push_back(g.payloads[i][0]);
      });
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 5; ++i)
    payloads.push_back({static_cast<std::uint8_t>(i)});
  std::vector<PacketView> pkts;
  for (const auto& p : payloads) pkts.push_back({a, b, p});
  net.send_batch(pkts);
  loop.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 1}));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(net.delivered(), 5u);
}

// Unbound destinations in a batch never touch the payload pool — the
// dominant case of an internet-scale scan (most probes hit nothing).
TEST_F(NetworkTest, BatchSkipsPoolForUnboundDestinations) {
  const std::vector<std::uint8_t> p{1, 2, 3};
  std::vector<PacketView> pkts;
  for (int i = 0; i < 32; ++i) pkts.push_back({a, b, p});  // b unbound
  net.send_batch(pkts);
  loop.run();
  EXPECT_EQ(net.dropped_unbound(), 32u);
  EXPECT_EQ(net.pool().slab_count(), 0u);
  EXPECT_EQ(net.sent(), 32u);
}

// Batch-aware taps see the whole span once; the per-packet digest a
// single tap accumulates over the same traffic must match.
TEST_F(NetworkTest, BatchTapObservesWholeSpan) {
  std::size_t span_items = 0;
  int span_calls = 0;
  net.add_tap([](SimTime, const Datagram&) {},
              [&](SimTime, std::span<const PacketView> s) {
                ++span_calls;
                span_items += s.size();
              });
  const std::vector<std::uint8_t> p{9};
  const PacketView pkts[] = {{a, b, p}, {a, b, p}};
  net.send_batch(pkts);
  loop.run();
  EXPECT_EQ(span_calls, 1);
  EXPECT_EQ(span_items, 2u);
}

// ---- Capture ---------------------------------------------------------------------

TEST_F(NetworkTest, CaptureSplitsDirections) {
  Capture cap(b.addr);
  cap.attach(net);
  net.bind(b, [&](const Datagram& d) {
    net.send(Datagram{b, d.src, {9}});  // respond
  });
  net.bind(a, [](const Datagram&) {});
  net.send(Datagram{a, b, {1, 2}});
  loop.run();
  EXPECT_EQ(cap.inbound_count(), 1u);
  EXPECT_EQ(cap.outbound_count(), 1u);
  ASSERT_EQ(cap.inbound().size(), 1u);
  EXPECT_EQ(cap.inbound()[0].payload.size(), 2u);
}

TEST_F(NetworkTest, CaptureCountOnlyOutbound) {
  Capture cap(a.addr);
  cap.set_count_only_outbound(true);
  cap.attach(net);
  net.send(Datagram{a, b, {1}});
  loop.run();
  EXPECT_EQ(cap.outbound_count(), 1u);
  EXPECT_TRUE(cap.outbound().empty());
}

// ---- CaptureStore ----------------------------------------------------------

TEST(CaptureStore, VantageRetainsInboundCountsOutbound) {
  EventLoop loop;
  Network net{loop, 7};
  const Endpoint vantage{IPv4Addr(9, 9, 9, 9), 53};
  const Endpoint peer{IPv4Addr(8, 8, 8, 8), 53};
  net.bind(vantage, [](const Datagram&) {});
  net.bind(peer, [](const Datagram&) {});

  CaptureStore store;
  store.attach(net, vantage.addr);
  net.send(Datagram{vantage, peer, {1, 2, 3}});  // outbound: counted only
  net.send(Datagram{peer, vantage, {4, 5}});     // inbound: retained
  loop.run();

  EXPECT_EQ(store.packet_count(), 2u);
  ASSERT_EQ(store.retained_count(), 1u);
  const auto payload = store.payload(0);
  EXPECT_EQ(std::vector<std::uint8_t>(payload.begin(), payload.end()),
            (std::vector<std::uint8_t>{4, 5}));
  EXPECT_NE(store.digest(), 0u);
}

TEST(CaptureStore, MergedDigestIsShardOrderInsensitive) {
  const Datagram p1{{IPv4Addr(1, 0, 0, 1), 100}, {IPv4Addr(2, 0, 0, 2), 53},
                    {10, 20}};
  const Datagram p2{{IPv4Addr(3, 0, 0, 3), 100}, {IPv4Addr(4, 0, 0, 4), 53},
                    {30}};
  const Datagram p3{{IPv4Addr(5, 0, 0, 5), 100}, {IPv4Addr(6, 0, 0, 6), 53},
                    {40, 50, 60}};

  // The same packet set partitioned two different ways across "shards".
  CaptureStore x1, x2, y1, y2;
  x1.add(SimTime::millis(1), p1);
  x1.add(SimTime::millis(2), p2);
  x2.add(SimTime::millis(3), p3);
  y1.add(SimTime::millis(9), p3);
  y1.add(SimTime::millis(8), p1);
  y2.add(SimTime::millis(7), p2);

  x1.merge(std::move(x2));
  y1.merge(std::move(y2));
  EXPECT_EQ(x1.digest(), y1.digest());
  EXPECT_EQ(x1.packet_count(), y1.packet_count());

  // Canonical sort makes the retained record sequences identical too.
  x1.sort_canonical();
  y1.sort_canonical();
  ASSERT_EQ(x1.records().size(), y1.records().size());
  for (std::size_t i = 0; i < x1.records().size(); ++i) {
    EXPECT_EQ(x1.records()[i].src, y1.records()[i].src);
    const auto px = x1.payload(i);
    const auto py = y1.payload(i);
    EXPECT_TRUE(std::equal(px.begin(), px.end(), py.begin(), py.end()));
  }
}

// observe_batch() drains packets through four interleaved digest lanes (plus
// a cached same-sender prefix); these tests pin it to the per-packet
// reference — add() for inbound, count_only() for outbound — bit for bit.
namespace {

/// Apply one span of packets to `ref` exactly as the per-packet taps would.
void observe_singly(CaptureStore& ref, SimTime t,
                    std::span<const PacketView> pkts, IPv4Addr host) {
  for (const PacketView& p : pkts) {
    const Datagram d{p.src, p.dst,
                     std::vector<std::uint8_t>(p.payload.begin(),
                                               p.payload.end())};
    if (p.dst.addr == host)
      ref.add(t, d);
    else if (p.src.addr == host)
      ref.count_only(t, d);
  }
}

void expect_stores_equal(const CaptureStore& a, const CaptureStore& b) {
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.packet_count(), b.packet_count());
  ASSERT_EQ(a.retained_count(), b.retained_count());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].src, b.records()[i].src);
    EXPECT_EQ(a.records()[i].dst, b.records()[i].dst);
    const auto pa = a.payload(i);
    const auto pb = b.payload(i);
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
}

}  // namespace

TEST(CaptureStore, BatchDigestEqualsPerPacketEqualLengths) {
  // Equal-length payloads drive the 4-lane interleaved drain; sweep batch
  // sizes covering every lane remainder (n mod 4 in {0,1,2,3}).
  const IPv4Addr host(9, 9, 9, 9);
  for (std::size_t n = 1; n <= 9; ++n) {
    std::vector<std::vector<std::uint8_t>> payloads;
    std::vector<PacketView> pkts;
    for (std::size_t i = 0; i < n; ++i) {
      payloads.push_back({std::uint8_t(i), std::uint8_t(i * 3 + 1), 0x55,
                          std::uint8_t(0xF0 ^ i)});
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Outbound probes from one sender: the same-src prefix cache path.
      pkts.push_back({{host, 54321},
                      {IPv4Addr(10, 0, 0, std::uint8_t(i + 1)), 53},
                      payloads[i]});
    }
    CaptureStore batch, single;
    batch.observe_batch(SimTime::millis(5), pkts, host);
    observe_singly(single, SimTime::millis(5), pkts, host);
    expect_stores_equal(batch, single);
  }
}

TEST(CaptureStore, BatchDigestEqualsPerPacketMixedLengthsAndDirections) {
  // Unequal lengths (including empty), inbound + outbound + foreign packets
  // interleaved: the batch path must classify and digest exactly like the
  // per-packet taps, skipping the foreign packet entirely.
  const IPv4Addr host(9, 9, 9, 9);
  const std::vector<std::uint8_t> p0;                      // empty payload
  const std::vector<std::uint8_t> p1{1};
  const std::vector<std::uint8_t> p2{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  const std::vector<std::uint8_t> p3(64, 0xAB);
  const std::vector<std::uint8_t> p4(300, 0x00);           // zero-run heavy
  const std::vector<PacketView> pkts = {
      {{host, 54321}, {IPv4Addr(10, 0, 0, 1), 53}, p1},         // outbound
      {{IPv4Addr(10, 0, 0, 1), 53}, {host, 54321}, p2},         // inbound
      {{IPv4Addr(8, 8, 8, 8), 53}, {IPv4Addr(7, 7, 7, 7), 53}, p3},  // foreign
      {{host, 54321}, {IPv4Addr(10, 0, 0, 2), 53}, p0},         // outbound
      {{IPv4Addr(10, 0, 0, 3), 53}, {host, 54321}, p4},         // inbound
      {{host, 54321}, {IPv4Addr(10, 0, 0, 4), 53}, p2},         // outbound
      {{host, 54321}, {IPv4Addr(10, 0, 0, 5), 53}, p3},         // outbound
  };
  CaptureStore batch, single;
  batch.observe_batch(SimTime::millis(8), pkts, host);
  observe_singly(single, SimTime::millis(8), pkts, host);
  expect_stores_equal(batch, single);
  EXPECT_EQ(batch.packet_count(), 6u);  // the foreign packet is not observed
  EXPECT_EQ(batch.retained_count(), 2u);
}

TEST(CaptureStore, BatchSplitsProduceOneDigest) {
  // A batch observed whole, split in two, or delivered packet-by-packet
  // yields one digest — the property that lets delivery_group_cap vary
  // without moving the capture digest.
  const IPv4Addr host(9, 9, 9, 9);
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<PacketView> pkts;
  for (std::size_t i = 0; i < 7; ++i)
    payloads.push_back(std::vector<std::uint8_t>(17 + i, std::uint8_t(i)));
  for (std::size_t i = 0; i < 7; ++i)
    pkts.push_back({{host, 54321},
                    {IPv4Addr(10, 0, 0, std::uint8_t(i + 1)), 53},
                    payloads[i]});

  CaptureStore whole, split, singles;
  whole.observe_batch(SimTime::millis(1), pkts, host);
  split.observe_batch(SimTime::millis(1), std::span(pkts).first(3), host);
  split.observe_batch(SimTime::millis(1), std::span(pkts).subspan(3), host);
  for (const PacketView& p : pkts)
    singles.observe_batch(SimTime::millis(1), std::span(&p, 1), host);
  EXPECT_EQ(whole.digest(), split.digest());
  EXPECT_EQ(whole.digest(), singles.digest());
  EXPECT_EQ(whole.packet_count(), split.packet_count());
  EXPECT_EQ(whole.packet_count(), singles.packet_count());
}

TEST(CaptureStore, DigestChangesWithContent) {
  // Payloads are shared immutable buffers now, so the one-byte variant is a
  // second datagram rather than an in-place edit.
  const Datagram p{{IPv4Addr(1, 0, 0, 1), 100}, {IPv4Addr(2, 0, 0, 2), 53},
                   {10, 20}};
  const Datagram q{{IPv4Addr(1, 0, 0, 1), 100}, {IPv4Addr(2, 0, 0, 2), 53},
                   {11, 20}};
  CaptureStore a, b;
  a.add(SimTime(), p);
  b.add(SimTime(), q);
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace orp::net
