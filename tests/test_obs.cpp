// orp::obs — metrics registry, flow tracer, exporters, campaign telemetry.
//
// Two layers of test: unit tests for the registry/tracer/exporter mechanics
// (bucket-edge semantics, merge determinism, export formats), and pipeline
// integration tests holding the subsystem to the same discipline as
// PipelineSharding — the invariant-tagged metric snapshot and the sampled
// flow set must be byte-identical for every shard count, and turning the
// whole layer on must not move a single bit of the campaign's output.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "analysis/report.h"
#include "core/paper_data.h"
#include "core/pipeline.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace orp::obs {
namespace {

// ---- metrics registry -------------------------------------------------------

TEST(ObsMetrics, HistogramEdgesAreInclusiveUpperBounds) {
  Schema s;
  const std::uint64_t edges[] = {10, 20};
  const HistogramHandle h = s.histogram("orp_test_hist", "help", edges);
  Metrics m(s);

  m.observe(h, 0);    // <= 10 -> bucket 0
  m.observe(h, 10);   // boundary lands in its own bucket (prometheus `le`)
  m.observe(h, 11);   // bucket 1
  m.observe(h, 20);   // boundary again
  m.observe(h, 21);   // +Inf overflow bucket

  EXPECT_EQ(m.bucket(h, 0), 2u);
  EXPECT_EQ(m.bucket(h, 1), 2u);
  EXPECT_EQ(m.bucket(h, 2), 1u);  // +Inf
  EXPECT_EQ(m.histogram_count(h), 5u);
  EXPECT_EQ(m.histogram_sum(h), 0u + 10 + 11 + 20 + 21);
}

TEST(ObsMetrics, MergeFoldsByRegisteredOpAndIsCommutative) {
  Schema s;
  const CounterHandle c = s.counter("orp_test_counter", "sums");
  const GaugeHandle peak = s.gauge("orp_test_peak", "max", MergeOp::kMax);
  const GaugeHandle low = s.gauge("orp_test_low", "min", MergeOp::kMin);
  const std::uint64_t edges[] = {5};
  const HistogramHandle h = s.histogram("orp_test_hist", "sums", edges);

  Metrics a(s), b(s);
  a.add(c, 3);
  b.add(c, 4);
  a.set(peak, 10);
  b.set(peak, 7);
  a.set(low, 10);
  b.set(low, 7);
  a.observe(h, 1);
  b.observe(h, 9);

  Metrics ab = a;
  ab += b;
  Metrics ba = b;
  ba += a;

  EXPECT_EQ(ab.counter(c), 7u);
  EXPECT_EQ(ab.gauge(peak), 10u);
  EXPECT_EQ(ab.gauge(low), 7u);
  EXPECT_EQ(ab.histogram_count(h), 2u);
  EXPECT_EQ(ab.histogram_sum(h), 10u);
  // Merge result depends only on the operand multiset, not the fold order.
  const auto raw_ab = ab.raw();
  const auto raw_ba = ba.raw();
  ASSERT_EQ(raw_ab.size(), raw_ba.size());
  for (std::size_t i = 0; i < raw_ab.size(); ++i)
    EXPECT_EQ(raw_ab[i], raw_ba[i]) << "slot " << i;
}

TEST(ObsMetrics, DisabledInstanceMergesAsIdentity) {
  Schema s;
  const CounterHandle c = s.counter("orp_test_counter", "help");
  Metrics enabled(s);
  enabled.add(c, 5);

  Metrics inert;  // default-constructed: no schema
  EXPECT_FALSE(inert.enabled());
  enabled += inert;  // no-op
  EXPECT_EQ(enabled.counter(c), 5u);

  inert += enabled;  // adopts the operand wholesale
  EXPECT_TRUE(inert.enabled());
  EXPECT_EQ(inert.counter(c), 5u);
}

TEST(ObsMetrics, BuiltinSchemaRegistersEverySubsystemOnce) {
  const Builtin& b = builtin();
  std::set<std::string> names;
  for (const MetricDef& d : b.schema.defs()) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate " << d.name;
    EXPECT_EQ(d.name.rfind("orp_", 0), 0u) << d.name;
    EXPECT_FALSE(d.help.empty()) << d.name;
  }
  // One handle per subsystem family must be present.
  EXPECT_EQ(names.count("orp_loop_events_run"), 1u);
  EXPECT_EQ(names.count("orp_loop_batch_size"), 1u);
  EXPECT_EQ(names.count("orp_net_sent"), 1u);
  EXPECT_EQ(names.count("orp_net_delivery_batch_size"), 1u);
  EXPECT_EQ(names.count("orp_net_batch_fallback_singles"), 1u);
  EXPECT_EQ(names.count("orp_scan_q1_sent"), 1u);
  EXPECT_EQ(names.count("orp_resolver_cache_bypass"), 1u);
  EXPECT_EQ(names.count("orp_auth_q2_received"), 1u);
  EXPECT_EQ(names.count("orp_trace_flows_sampled"), 1u);
}

// ---- exporters --------------------------------------------------------------

TEST(ObsExport, PrometheusRendersCumulativeBuckets) {
  Schema s;
  const CounterHandle c = s.counter("orp_test_counter", "a counter");
  const std::uint64_t edges[] = {10, 20};
  const HistogramHandle h = s.histogram("orp_test_hist", "a histogram", edges);
  Metrics m(s);
  m.add(c, 42);
  m.observe(h, 5);
  m.observe(h, 15);
  m.observe(h, 99);

  const std::string text = to_prometheus(m);
  EXPECT_NE(text.find("# HELP orp_test_counter a counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE orp_test_counter counter\n"), std::string::npos);
  EXPECT_NE(text.find("orp_test_counter 42\n"), std::string::npos);
  EXPECT_NE(text.find("orp_test_hist_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("orp_test_hist_bucket{le=\"20\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("orp_test_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("orp_test_hist_sum 119\n"), std::string::npos);
  EXPECT_NE(text.find("orp_test_hist_count 3\n"), std::string::npos);
}

TEST(ObsExport, JsonlEmitsOneObjectPerMetric) {
  Schema s;
  s.counter("orp_test_a", "first");
  s.counter("orp_test_b", "second");
  Metrics m(s);
  const std::string jsonl = to_jsonl(m);
  std::size_t lines = 0;
  for (const char ch : jsonl)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("{\"name\":\"orp_test_a\",\"kind\":\"counter\","
                       "\"value\":0}\n"),
            std::string::npos);
}

TEST(ObsExport, InvariantOnlyFiltersVariantMetrics) {
  Schema s;
  s.counter("orp_test_stable", "same for every shard count",
            Invariance::kThreadInvariant);
  s.counter("orp_test_wobbly", "per-shard structure",
            Invariance::kThreadVariant);
  Metrics m(s);
  const std::string all = to_prometheus(m);
  const std::string invariant = to_prometheus(m, /*invariant_only=*/true);
  EXPECT_NE(all.find("orp_test_wobbly"), std::string::npos);
  EXPECT_NE(invariant.find("orp_test_stable"), std::string::npos);
  EXPECT_EQ(invariant.find("orp_test_wobbly"), std::string::npos);
}

TEST(ObsExport, DisabledMetricsExportEmpty) {
  Metrics inert;
  EXPECT_TRUE(to_prometheus(inert).empty());
  EXPECT_TRUE(to_jsonl(inert).empty());
}

// ---- flow tracer ------------------------------------------------------------

TEST(ObsTrace, SamplingIsByGlobalPermutationIndex) {
  const FlowTracer t(/*sample_every=*/8);
  EXPECT_TRUE(t.sample(0));
  EXPECT_FALSE(t.sample(1));
  EXPECT_FALSE(t.sample(7));
  EXPECT_TRUE(t.sample(8));
  EXPECT_TRUE(t.sample(800));
  const FlowTracer off;  // disabled tracer samples nothing
  EXPECT_FALSE(off.sample(0));
}

TEST(ObsTrace, MarkedGatesDownstreamRecords) {
  FlowTracer t(1);
  EXPECT_FALSE(t.marked(0xAA));
  t.begin_flow(0xAA, 16, net::SimTime::seconds(1), 0x01010101);
  EXPECT_TRUE(t.marked(0xAA));
  EXPECT_FALSE(t.marked(0xBB));
  t.record(0xAA, SpanPoint::kR2Received, net::SimTime::seconds(2), 0x01010101);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].point, SpanPoint::kQ1Sent);
  EXPECT_EQ(t.records()[0].perm_index, 16u);
  EXPECT_EQ(t.records()[1].point, SpanPoint::kR2Received);
  EXPECT_EQ(t.records()[1].perm_index, TraceRecord::kNoIndex);
}

TEST(ObsTrace, MergeThenCanonicalSortIsShardOrderIndependent) {
  const auto build = [](bool reversed) {
    FlowTracer shard_a(4), shard_b(4);
    shard_a.begin_flow(0x2, 4, net::SimTime::seconds(1), 1);
    shard_a.record(0x2, SpanPoint::kR2Received, net::SimTime::seconds(3), 1);
    shard_b.begin_flow(0x1, 8, net::SimTime::seconds(2), 2);
    FlowTracer merged(4);
    if (reversed) {
      merged.merge(std::move(shard_b));
      merged.merge(std::move(shard_a));
    } else {
      merged.merge(std::move(shard_a));
      merged.merge(std::move(shard_b));
    }
    merged.sort_canonical();
    return traces_to_jsonl(merged);
  };
  const std::string forward = build(false);
  EXPECT_EQ(forward, build(true));
  // Canonical order groups by flow, then time.
  EXPECT_LT(forward.find("\"flow\":\"0000000000000001\""),
            forward.find("\"flow\":\"0000000000000002\""));
}

TEST(ObsTrace, TracesJsonlCarriesAllSpanFields) {
  FlowTracer t(1);
  t.begin_flow(0xDEADBEEF, 64, net::SimTime::seconds(1),
               net::IPv4Addr(192, 0, 2, 7).value());
  const std::string line = traces_to_jsonl(t);
  EXPECT_NE(line.find("\"flow\":\"00000000deadbeef\""), std::string::npos);
  EXPECT_NE(line.find("\"perm_index\":64"), std::string::npos);
  EXPECT_NE(line.find("\"point\":\"Q1\""), std::string::npos);
  EXPECT_NE(line.find("\"t_ns\":1000000000"), std::string::npos);
  EXPECT_NE(line.find("\"peer\":\"192.0.2.7\""), std::string::npos);
}

// ---- campaign progress ------------------------------------------------------

TEST(ObsProgress, SnapshotSumsAllBeacons) {
  CampaignProgress progress(3);
  progress.shard(0).probes_sent.store(100, std::memory_order_relaxed);
  progress.shard(1).probes_sent.store(50, std::memory_order_relaxed);
  progress.shard(2).responses.store(7, std::memory_order_relaxed);
  progress.shard(1).events.store(1000, std::memory_order_relaxed);
  progress.shard(2).done.store(1, std::memory_order_relaxed);

  const CampaignProgress::Snapshot s = progress.snapshot();
  EXPECT_EQ(s.probes_sent, 150u);
  EXPECT_EQ(s.responses, 7u);
  EXPECT_EQ(s.events, 1000u);
  EXPECT_EQ(s.shards_done, 1u);
  EXPECT_EQ(s.shards, 3u);

  const std::string line =
      CampaignProgress::render(s, /*probes_expected=*/300, 2.5);
  EXPECT_NE(line.find("150"), std::string::npos);
  EXPECT_NE(line.find("1/3"), std::string::npos);
}

// ---- pipeline integration ---------------------------------------------------

core::PipelineConfig obs_config(unsigned threads) {
  core::PipelineConfig cfg;
  cfg.scale = 16384;
  cfg.seed = 42;
  cfg.threads = threads;
  cfg.obs.metrics = true;
  cfg.obs.trace_sample_every = 64;
  // Exercise the beacon/reporter concurrency too (a couple of [obs] lines
  // on stderr; the TSan preset runs these cases to make a missed
  // happens-before edge loud).
  cfg.obs.progress_interval_s = 0.05;
  return cfg;
}

/// Shared instrumented outcomes so the expensive campaigns run once.
const core::ScanOutcome& instrumented(unsigned threads) {
  static const core::ScanOutcome t1 =
      core::run_measurement(core::paper_2018(), obs_config(1));
  static const core::ScanOutcome t2 =
      core::run_measurement(core::paper_2018(), obs_config(2));
  static const core::ScanOutcome t4 =
      core::run_measurement(core::paper_2018(), obs_config(4));
  return threads == 1 ? t1 : (threads == 2 ? t2 : t4);
}

TEST(ObsPipeline, InstrumentationDoesNotPerturbTheCampaign) {
  core::PipelineConfig plain = obs_config(2);
  plain.obs = obs::ObsConfig{};  // everything off
  const core::ScanOutcome off = core::run_measurement(core::paper_2018(), plain);
  EXPECT_FALSE(off.metrics.enabled());

  // At the matching shard count, the equality is total: the full-payload
  // capture digest and the event count match the uninstrumented run bit for
  // bit — the instrumented shard executed the exact same event stream.
  EXPECT_EQ(instrumented(2).capture.digest(), off.capture.digest());
  EXPECT_EQ(instrumented(2).events_executed, off.events_executed);

  // Across shard counts, the thread-invariant surface (behavior digest,
  // scan/auth totals, rendered analysis tables — the PipelineSharding set)
  // matches the one off reference.
  const std::string off_tables =
      analysis::render_answer_table({{"2018", off.analysis.answers}}) +
      analysis::render_flag_table({{"2018", off.analysis.ra}}, "RA") +
      analysis::render_rcode_table({{"2018", off.analysis.rcodes}}) +
      analysis::render_incorrect_table({{"2018", off.analysis.incorrect}});
  for (const unsigned threads : {1u, 2u, 4u}) {
    const core::ScanOutcome& on = instrumented(threads);
    EXPECT_TRUE(on.metrics.enabled());
    EXPECT_EQ(on.capture_digest, off.capture_digest) << threads;
    EXPECT_EQ(on.scan.q1_sent, off.scan.q1_sent) << threads;
    EXPECT_EQ(on.auth.queries_received, off.auth.queries_received) << threads;
    const std::string on_tables =
        analysis::render_answer_table({{"2018", on.analysis.answers}}) +
        analysis::render_flag_table({{"2018", on.analysis.ra}}, "RA") +
        analysis::render_rcode_table({{"2018", on.analysis.rcodes}}) +
        analysis::render_incorrect_table({{"2018", on.analysis.incorrect}});
    EXPECT_EQ(on_tables, off_tables) << threads;
  }
}

TEST(ObsPipeline, MergedMetricsMirrorTheMergedStats) {
  const core::ScanOutcome& o = instrumented(2);
  const Builtin& b = builtin();
  const Metrics& m = o.metrics;
  EXPECT_EQ(m.counter(b.scan_q1_sent), o.scan.q1_sent);
  EXPECT_EQ(m.counter(b.scan_r2_received), o.scan.r2_received);
  EXPECT_EQ(m.counter(b.scan_timeouts_reaped), o.scan.timeouts_reaped);
  EXPECT_EQ(m.counter(b.auth_q2_received), o.auth.queries_received);
  EXPECT_EQ(m.counter(b.auth_r1_sent), o.auth.responses_sent);
  EXPECT_EQ(m.counter(b.auth_cluster_loads), o.auth.cluster_loads);
  EXPECT_EQ(m.counter(b.capture_packets), o.capture.packet_count());
  EXPECT_EQ(m.counter(b.loop_events_run), o.events_executed);
  // Live loop instrumentation agrees with the end-of-run sweep.
  EXPECT_EQ(m.histogram_count(b.loop_time_in_queue_us), o.events_executed);
  EXPECT_GT(m.counter(b.net_delivered), 0u);
  EXPECT_GT(m.counter(b.rate_tokens_granted), 0u);
  // Every probe qname is unique, so the planted recursives never hit their
  // final-answer cache during the campaign — §III-B, now measurable.
  EXPECT_GT(m.counter(b.resolver_cache_bypass), 0u);
}

TEST(ObsPipeline, BatchDispatchTelemetryIsCoherent) {
  const core::ScanOutcome& o = instrumented(2);
  const Builtin& b = builtin();
  const Metrics& m = o.metrics;
  // Every executed event belongs to exactly one drained run, so the
  // batch-size histogram's weighted sum is the event count, and each
  // observation covers at least one event.
  EXPECT_EQ(m.histogram_sum(b.loop_batch_size), o.events_executed);
  EXPECT_GT(m.histogram_count(b.loop_batch_size), 0u);
  EXPECT_LE(m.histogram_count(b.loop_batch_size), o.events_executed);
  // Grouped deliveries happened, and every grouped packet either reached a
  // handler or was dropped as unbound — the histogram's weighted sum cannot
  // exceed that envelope.
  EXPECT_GT(m.histogram_count(b.net_delivery_batch_size), 0u);
  EXPECT_LE(m.histogram_sum(b.net_delivery_batch_size),
            m.counter(b.net_delivered) + m.counter(b.net_dropped_unbound));
  // Fallback singles are a subset of delivered packets. The campaign's
  // endpoints (scanner, auth servers, resolver hosts) all register batch
  // handlers; only one-shot ephemeral ports take the per-item fallback.
  EXPECT_LE(m.counter(b.net_batch_fallback_singles),
            m.counter(b.net_delivered));
}

TEST(ObsPipeline, InvariantMetricSnapshotIdenticalForEveryThreadCount) {
  const std::string ref =
      to_prometheus(instrumented(1).metrics, /*invariant_only=*/true);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(to_prometheus(instrumented(2).metrics, true), ref);
  EXPECT_EQ(to_prometheus(instrumented(4).metrics, true), ref);
  // The JSONL rendering of the same subset is equally stable.
  const std::string ref_jsonl =
      to_jsonl(instrumented(1).metrics, /*invariant_only=*/true);
  EXPECT_EQ(to_jsonl(instrumented(4).metrics, true), ref_jsonl);
}

TEST(ObsPipeline, TraceSamplerPicksTheSameFlowsAtAnyShardCount) {
  // Sampling is keyed to the global permutation index, so the *set* of
  // sampled probe indices is a property of the campaign, not the layout.
  const auto q1_indices = [](const core::ScanOutcome& o) {
    std::set<std::uint64_t> s;
    for (const TraceRecord& r : o.traces.records())
      if (r.point == SpanPoint::kQ1Sent) s.insert(r.perm_index);
    return s;
  };
  const auto ref = q1_indices(instrumented(1));
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(q1_indices(instrumented(2)), ref);
  EXPECT_EQ(q1_indices(instrumented(4)), ref);
}

TEST(ObsPipeline, TracedFlowsTellACoherentStory) {
  const core::ScanOutcome& o = instrumented(2);
  std::uint64_t q1 = 0, q2 = 0, r1 = 0, r2 = 0;
  for (const TraceRecord& r : o.traces.records()) {
    switch (r.point) {
      case SpanPoint::kQ1Sent: ++q1; break;
      case SpanPoint::kQ2Auth: ++q2; break;
      case SpanPoint::kR1Sent: ++r1; break;
      case SpanPoint::kR2Received: ++r2; break;
    }
  }
  EXPECT_GT(q1, 0u);
  EXPECT_GT(r2, 0u);
  EXPECT_EQ(q2, r1);  // the auth server answers everything it traces
  // Within one flow, spans are time-ordered after the canonical sort: a
  // response can never precede the probe that caused it.
  const auto records = o.traces.records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].flow != records[i - 1].flow) continue;
    EXPECT_LE(records[i - 1].time_ns, records[i].time_ns) << "record " << i;
  }
}

}  // namespace
}  // namespace orp::obs
