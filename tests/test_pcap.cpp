#include <gtest/gtest.h>

#include <cstdio>

#include "dns/builder.h"
#include "dns/codec.h"
#include "net/pcap.h"

namespace orp::net {
namespace {

std::vector<CapturedPacket> sample_packets() {
  std::vector<CapturedPacket> packets;
  for (int i = 0; i < 5; ++i) {
    CapturedPacket pkt;
    pkt.time = SimTime::seconds(1.5 * i);
    pkt.src = Endpoint{IPv4Addr(132, 170, 3, 44), 54321};
    pkt.dst = Endpoint{IPv4Addr(8, 8, static_cast<std::uint8_t>(i), 8), 53};
    pkt.payload = dns::encode(dns::make_query(
        static_cast<std::uint16_t>(i),
        dns::DnsName::must_parse("or000.000000" + std::to_string(i) +
                                 ".ucfsealresearch.net")));
    packets.push_back(std::move(pkt));
  }
  return packets;
}

TEST(Pcap, RoundTripPreservesEverything) {
  const auto original = sample_packets();
  const auto parsed = from_pcap(to_pcap(original));
  ASSERT_TRUE(parsed.has_value()) << to_string(parsed.error());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].src, original[i].src);
    EXPECT_EQ((*parsed)[i].dst, original[i].dst);
    EXPECT_EQ((*parsed)[i].payload, original[i].payload);
    // Microsecond resolution on disk.
    EXPECT_NEAR((*parsed)[i].time.as_seconds(), original[i].time.as_seconds(),
                1e-6);
  }
}

TEST(Pcap, PayloadsStillDecodeAsDns) {
  const auto parsed = from_pcap(to_pcap(sample_packets()));
  ASSERT_TRUE(parsed.has_value());
  for (const auto& pkt : *parsed) {
    const auto msg = dns::decode(pkt.payload);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->questions.size(), 1u);
  }
}

TEST(Pcap, EmptyCaptureIsJustTheGlobalHeader) {
  const auto bytes = to_pcap({});
  EXPECT_EQ(bytes.size(), 24u);
  const auto parsed = from_pcap(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(Pcap, RejectsBadMagic) {
  auto bytes = to_pcap(sample_packets());
  bytes[0] ^= 0xFF;
  const auto parsed = from_pcap(bytes);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error(), PcapError::kBadMagic);
}

TEST(Pcap, RejectsTruncatedPacket) {
  auto bytes = to_pcap(sample_packets());
  bytes.resize(bytes.size() - 3);
  const auto parsed = from_pcap(bytes);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error(), PcapError::kTruncatedPacket);
}

TEST(Pcap, RejectsTruncatedGlobalHeader) {
  const std::vector<std::uint8_t> bytes{0xd4, 0xc3};
  ASSERT_FALSE(from_pcap(bytes).has_value());
}

TEST(Pcap, IpChecksumValidates) {
  const auto bytes = to_pcap(sample_packets());
  // First packet's IP header starts after 24B global + 16B record header;
  // the checksum over a correct header (checksum field included) is 0.
  const std::uint8_t* ip = bytes.data() + 40;
  EXPECT_EQ(internet_checksum(ip, 20), 0);
}

TEST(Pcap, ChecksumKnownVector) {
  // RFC 1071 worked example: words 0001 f203 f4f5 f6f7 sum to 0x2ddf0,
  // which folds to 0xddf2; the checksum is its one's complement 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data, sizeof(data)), 0x220d);
}

TEST(Pcap, ChecksumOddLengthPadsWithZero) {
  const std::uint8_t even[] = {0xab, 0xcd, 0x12, 0x00};
  const std::uint8_t odd[] = {0xab, 0xcd, 0x12};
  EXPECT_EQ(internet_checksum(even, 4), internet_checksum(odd, 3));
}

TEST(Pcap, FileRoundTrip) {
  const std::string path = "/tmp/orp_test_capture.pcap";
  const auto original = sample_packets();
  ASSERT_TRUE(write_pcap_file(path, original));
  const auto parsed = read_pcap_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), original.size());
  std::remove(path.c_str());
}

TEST(Pcap, MissingFileIsIoError) {
  const auto parsed = read_pcap_file("/tmp/does-not-exist-orp.pcap");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error(), PcapError::kIoError);
}

}  // namespace
}  // namespace orp::net
