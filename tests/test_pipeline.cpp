// End-to-end integration tests: population -> simulated Internet -> scan ->
// analysis, checked against the paper's (scaled) numbers. These are the
// tests that certify the repository actually reproduces the study's shapes.
#include <gtest/gtest.h>

#include "analysis/flow.h"
#include "core/contrast.h"
#include "core/paper_data.h"
#include "core/pipeline.h"

namespace orp::core {
namespace {

constexpr std::uint64_t kScale = 2048;

/// Shared outcome per year so the expensive scans run once per binary.
const ScanOutcome& outcome_2018() {
  static const ScanOutcome o = [] {
    PipelineConfig cfg;
    cfg.scale = kScale;
    cfg.seed = 42;
    return run_measurement(paper_2018(), cfg);
  }();
  return o;
}

const ScanOutcome& outcome_2013() {
  static const ScanOutcome o = [] {
    PipelineConfig cfg;
    cfg.scale = kScale;
    cfg.seed = 42;
    return run_measurement(paper_2013(), cfg);
  }();
  return o;
}

double rel_err(std::uint64_t measured, std::uint64_t expected) {
  if (expected == 0) return measured == 0 ? 0.0 : 1.0;
  return std::abs(static_cast<double>(measured) -
                  static_cast<double>(expected)) /
         static_cast<double>(expected);
}

TEST(Pipeline2018, Q1WithinHalfPercentOfScaledPaper) {
  const auto& o = outcome_2018();
  EXPECT_LT(rel_err(o.scan.q1_sent, o.expect(paper_2018().q1)), 0.005);
}

TEST(Pipeline2018, EveryPlantedHostAnsweredExactlyOnce) {
  const auto& o = outcome_2018();
  // Responders = population spec entries minus the never-respond ones (none
  // in the calibrated spec) — every planted host is probed exactly once.
  EXPECT_EQ(o.scan.r2_received, o.spec.hosts.size());
  EXPECT_EQ(o.scan.r2_matched + o.scan.r2_empty_question, o.scan.r2_received);
}

TEST(Pipeline2018, Q2TracksTableTwoRatio) {
  const auto& o = outcome_2018();
  EXPECT_LT(rel_err(o.auth.queries_received, o.expect(paper_2018().q2_r1)),
            0.05);
  // R1 mirrors Q2 at the auth server.
  EXPECT_EQ(o.auth.queries_received, o.auth.responses_sent);
}

TEST(Pipeline2018, AnswerBreakdownMatchesScaledTableThree) {
  const auto& a = outcome_2018().analysis.answers;
  const auto& o = outcome_2018();
  EXPECT_LT(rel_err(a.correct, o.expect(paper_2018().answers.correct)), 0.02);
  EXPECT_LT(rel_err(a.incorrect, o.expect(paper_2018().answers.incorrect)),
            0.10);
  EXPECT_LT(
      rel_err(a.without_answer, o.expect(paper_2018().answers.without_answer)),
      0.02);
  EXPECT_NEAR(a.err_percent(), paper_2018().answers.err_percent(), 0.8);
}

TEST(Pipeline2018, RaAsymmetryReproduced) {
  const auto& ra = outcome_2018().analysis.ra;
  // Table IV's 2018 signature: answers under RA=0 are overwhelmingly wrong;
  // answers under RA=1 are overwhelmingly right.
  EXPECT_GT(ra.bit0.err_percent(), 75.0);
  EXPECT_LT(ra.bit1.err_percent(), 5.0);
  EXPECT_GT(ra.bit1.correct, ra.bit0.correct * 100);
}

TEST(Pipeline2018, AaAsymmetryReproduced) {
  const auto& aa = outcome_2018().analysis.aa;
  // Table V's 2018 signature: AA=1 answers are ~79% wrong, AA=0 ~0.6%.
  EXPECT_GT(aa.bit1.err_percent(), 60.0);
  EXPECT_LT(aa.bit0.err_percent(), 2.0);
}

TEST(Pipeline2018, RcodeAbnormalCombinationsPresent) {
  const auto& rc = outcome_2018().analysis.rcodes;
  // Refused dominates the no-answer population, per Table VI.
  EXPECT_GT(rc.row(dns::Rcode::kRefused).without_answer,
            rc.row(dns::Rcode::kServFail).without_answer);
  // The paper's anomaly: answers carried by error rcodes.
  EXPECT_GT(rc.error_rcode_with_answer(), 0u);
  // And NoError responses with no answer at all.
  EXPECT_GT(rc.noerror_without_answer(), 0u);
}

TEST(Pipeline2018, IncorrectFormsShapedLikeTableSeven) {
  const auto& inc = outcome_2018().analysis.incorrect;
  EXPECT_GT(inc.ip.r2, inc.url.r2);
  EXPECT_GT(inc.ip.r2, 40u);  // ~54 expected at 1/2048
  EXPECT_EQ(inc.na.r2, 0u);   // undecodable answers are a 2013 phenomenon
}

TEST(Pipeline2018, PaperHeadAddressRanksHighWithAttribution) {
  const auto& top = outcome_2018().analysis.top10;
  ASSERT_FALSE(top.empty());
  // 216.194.64.193 heads Table VIII with ~21% of incorrect answers. In a
  // 1/N subsample the rank-1 slot can be contested by tail noise, but the
  // head must stay in the top ranks with its org/intel attribution intact.
  bool found = false;
  for (std::size_t i = 0; i < top.size() && i < 4; ++i) {
    if (top[i].addr.to_string() != "216.194.64.193") continue;
    found = true;
    EXPECT_EQ(top[i].org, "Tera-byte Dot Com");
    EXPECT_EQ(top[i].reported, 'N');
  }
  EXPECT_TRUE(found);
  // Private-network answers appear among the top entries (Table VIII has 4).
  bool private_seen = false;
  for (const auto& e : top) private_seen |= e.reported == '-';
  EXPECT_TRUE(private_seen);
}

TEST(Pipeline2018, MaliciousAnalysisTracksTablesNineAndTen) {
  const auto& mal = outcome_2018().analysis.malicious;
  const auto& o = outcome_2018();
  EXPECT_LT(rel_err(mal.total_r2, o.expect(paper_2018().malicious_r2)), 0.35);
  // Malware dominates the category mix (86% of malicious R2 in Table IX).
  EXPECT_GE(mal.categories[0].r2, mal.total_r2 / 2);
  // Table X: malicious responses skew RA=0 and AA=1, all NoError.
  EXPECT_GT(mal.ra0, mal.ra1);
  EXPECT_GT(mal.aa1, mal.aa0);
  EXPECT_EQ(mal.rcode_noerror, mal.total_r2);
}

TEST(Pipeline2018, GeoDistributionUsDominant) {
  const auto& geo = outcome_2018().analysis.geo;
  ASSERT_FALSE(geo.countries.empty());
  EXPECT_EQ(geo.countries[0].country, "US");
  EXPECT_GE(geo.countries[0].share(geo.total), 60.0);
}

TEST(Pipeline2018, EmptyQuestionPopulationObserved) {
  const auto& eq = outcome_2018().analysis.empty_question;
  EXPECT_GE(eq.total, 1u);  // 494/4096 floors to the guaranteed representative
  EXPECT_EQ(eq.correct, 0u);
}

TEST(Pipeline2018, ClusterReuseKeepsZoneLoadsSmall) {
  const auto& o = outcome_2018();
  // Theoretical clusters without reuse: raw_steps/cluster_size ~ 860.
  EXPECT_GT(o.spec.raw_steps / o.spec.cluster_size, 500u);
  EXPECT_LT(o.cluster_loads, 12u);
  EXPECT_GT(o.clusters.subdomains_reused, o.scan.q1_sent / 2);
}

TEST(Pipeline2018, SimulatedDurationNearPaperDuration) {
  // 3.7B/scale probes at 100k/scale pps ~ 10.3h + drain window.
  const double hours = outcome_2018().sim_duration_seconds / 3600.0;
  EXPECT_GT(hours, 9.5);
  EXPECT_LT(hours, 11.5);
}

TEST(Pipeline2013, HeadlinesMatchScaledPaper) {
  const auto& o = outcome_2013();
  EXPECT_LT(rel_err(o.scan.q1_sent, o.expect(paper_2013().q1)), 0.005);
  EXPECT_LT(rel_err(o.scan.r2_received, o.expect(paper_2013().r2)), 0.01);
  EXPECT_LT(rel_err(o.auth.queries_received, o.expect(paper_2013().q2_r1)),
            0.05);
  EXPECT_NEAR(o.analysis.answers.err_percent(),
              paper_2013().answers.err_percent(), 0.4);
}

TEST(Pipeline2013, UndecodableAnswersAppearOnlyIn2013) {
  EXPECT_GT(outcome_2013().analysis.incorrect.na.r2, 0u);
}

TEST(Pipeline2013, DurationScalesToTheWeekLongScan) {
  const double days = outcome_2013().sim_duration_seconds / 86400.0;
  EXPECT_GT(days, 6.5);
  EXPECT_LT(days, 8.0);
}

TEST(Contrast, MeasuredScansReproduceTheHeadlineClaims) {
  const TemporalContrast c =
      contrast(outcome_2013().analysis, outcome_2018().analysis);
  EXPECT_TRUE(c.open_resolvers_decreased());
  EXPECT_TRUE(c.error_rate_increased());
  EXPECT_TRUE(c.malicious_increased());
  EXPECT_TRUE(c.incorrect_roughly_stable(0.30));
}

TEST(Pipeline, DeterministicForSameSeed) {
  PipelineConfig cfg;
  cfg.scale = 65536;
  cfg.seed = 7;
  const ScanOutcome a = run_measurement(paper_2018(), cfg);
  const ScanOutcome b = run_measurement(paper_2018(), cfg);
  EXPECT_EQ(a.scan.q1_sent, b.scan.q1_sent);
  EXPECT_EQ(a.scan.r2_received, b.scan.r2_received);
  EXPECT_EQ(a.auth.queries_received, b.auth.queries_received);
  EXPECT_EQ(a.analysis.answers.correct, b.analysis.answers.correct);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Pipeline, SeedChangesAddressesNotAggregates) {
  PipelineConfig cfg;
  cfg.scale = 65536;
  cfg.seed = 7;
  const ScanOutcome a = run_measurement(paper_2018(), cfg);
  cfg.seed = 8;
  const ScanOutcome b = run_measurement(paper_2018(), cfg);
  // The population is calibrated, not sampled: aggregates are seed-invariant
  // up to zone-rotation boundary races (a subdomain reused from the previous
  // cluster can draw NXDomain if a second rotation lands mid-recursion —
  // ~1 packet per scan, a noise floor the real pipeline shares).
  EXPECT_EQ(a.scan.r2_received, b.scan.r2_received);
  EXPECT_NEAR(static_cast<double>(a.analysis.answers.correct),
              static_cast<double>(b.analysis.answers.correct), 2.0);
  EXPECT_NEAR(static_cast<double>(a.analysis.answers.incorrect),
              static_cast<double>(b.analysis.answers.incorrect), 2.0);
  // But the scan order / planted addresses differ.
  EXPECT_NE(a.scan.q1_sent, b.scan.q1_sent);
}

// ---- Sharding ---------------------------------------------------------------

/// Every paper table rendered into one comparable string.
std::string rendered_tables(const ScanOutcome& o) {
  std::string s;
  s += analysis::render_answer_table({{"measured", o.analysis.answers}});
  s += analysis::render_flag_table({{"measured", o.analysis.ra}}, "RA");
  s += analysis::render_flag_table({{"measured", o.analysis.aa}}, "AA");
  s += analysis::render_rcode_table({{"measured", o.analysis.rcodes}});
  s += analysis::render_incorrect_table({{"measured", o.analysis.incorrect}});
  s += analysis::render_top10_table(o.analysis.top10);
  s += analysis::render_malicious_table({{"measured", o.analysis.malicious}});
  s += analysis::render_malicious_flags_table(
      {{"measured", o.analysis.malicious}});
  s += analysis::render_geo_summary(o.analysis.geo);
  s += analysis::render_empty_question_summary(o.analysis.empty_question);
  return s;
}

TEST(PipelineSharding, MergedReportIdenticalForEveryThreadCount) {
  PipelineConfig base;
  base.scale = 16384;
  base.seed = 42;
  base.threads = 1;
  base.retain_views = true;  // the view-order comparison below needs them
  const ScanOutcome ref = run_measurement(paper_2018(), base);
  const std::string ref_tables = rendered_tables(ref);
  ASSERT_GT(ref.scan.r2_received, 100u);
  ASSERT_GT(ref.views.size(), 100u);
  ASSERT_NE(ref.capture_digest, 0u);

  for (const unsigned threads : {2u, 4u, 8u}) {
    PipelineConfig cfg = base;
    cfg.threads = threads;
    const ScanOutcome o = run_measurement(paper_2018(), cfg);
    EXPECT_EQ(o.threads_used, threads);

    // Scan-side counters partition exactly across shard slices.
    EXPECT_EQ(o.scan.q1_sent, ref.scan.q1_sent) << threads;
    EXPECT_EQ(o.scan.skipped_reserved, ref.scan.skipped_reserved) << threads;
    EXPECT_EQ(o.scan.skipped_overflow, ref.scan.skipped_overflow) << threads;
    EXPECT_EQ(o.scan.r2_received, ref.scan.r2_received) << threads;
    EXPECT_EQ(o.scan.r2_matched, ref.scan.r2_matched) << threads;
    EXPECT_EQ(o.scan.r2_empty_question, ref.scan.r2_empty_question) << threads;
    EXPECT_EQ(o.scan.r2_unmatched, ref.scan.r2_unmatched) << threads;
    EXPECT_EQ(o.scan.timeouts_reaped, ref.scan.timeouts_reaped) << threads;

    // Auth-vantage counters: one AuthServer instance per shard, summed
    // (cluster_loads is deliberately excluded: each instance performs its
    // own initial load, so it counts S, not 1 — see DESIGN.md §3).
    EXPECT_EQ(o.auth.queries_received, ref.auth.queries_received) << threads;
    EXPECT_EQ(o.auth.responses_sent, ref.auth.responses_sent) << threads;
    EXPECT_EQ(o.auth.answered, ref.auth.answered) << threads;
    EXPECT_EQ(o.auth.nxdomain, ref.auth.nxdomain) << threads;
    EXPECT_EQ(o.auth.refused, ref.auth.refused) << threads;
    EXPECT_EQ(o.auth.edns_queries, ref.auth.edns_queries) << threads;
    EXPECT_EQ(o.auth.dnssec_do_queries, ref.auth.dnssec_do_queries) << threads;

    // Merged views arrive in canonical order with identical behavior.
    ASSERT_EQ(o.views.size(), ref.views.size());
    for (std::size_t i = 0; i < o.views.size(); ++i)
      EXPECT_EQ(o.views[i].resolver, ref.views[i].resolver) << i;
    EXPECT_EQ(o.capture_digest, ref.capture_digest) << threads;
    EXPECT_EQ(o.capture.packet_count(), ref.capture.packet_count()) << threads;

    // The headline requirement: byte-identical rendered tables.
    EXPECT_EQ(rendered_tables(o), ref_tables) << "threads=" << threads;
  }
}

TEST(PipelineSharding, BatchCapsAreBehaviorInvisible) {
  // The batched-dispatch caps (event-loop drain size, grouped-delivery
  // size) are purely mechanical: every value must reproduce the reference
  // run bit-for-bit — raw capture digest (full payload bytes), behavioral
  // digest, and rendered tables — at every thread count.
  PipelineConfig base;
  base.scale = 16384;
  base.seed = 42;
  base.threads = 1;
  const ScanOutcome ref = run_measurement(paper_2018(), base);
  const std::string ref_tables = rendered_tables(ref);
  ASSERT_GT(ref.scan.r2_received, 100u);
  ASSERT_NE(ref.capture_digest, 0u);

  for (const unsigned threads : {1u, 4u}) {
    // The raw capture digest folds shard-merge order, which legitimately
    // varies with the shard count — so each thread count gets its own
    // raw-digest reference (default caps), while the canonical digest and
    // rendered tables must match the threads=1 reference everywhere.
    PipelineConfig thr = base;
    thr.threads = threads;
    const std::uint64_t raw_ref = run_measurement(paper_2018(), thr).capture.digest();
    for (const std::size_t cap :
         {std::size_t{1}, std::size_t{8}, std::size_t{64}, std::size_t{0}}) {
      PipelineConfig cfg = base;
      cfg.threads = threads;
      cfg.loop_batch_cap = cap;
      cfg.delivery_group_cap = cap;
      const ScanOutcome o = run_measurement(paper_2018(), cfg);
      EXPECT_EQ(o.scan.q1_sent, ref.scan.q1_sent)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.scan.r2_received, ref.scan.r2_received)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.capture.digest(), raw_ref)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.capture_digest, ref.capture_digest)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(rendered_tables(o), ref_tables)
          << "threads=" << threads << " cap=" << cap;
    }
  }
}

TEST(PipelineSharding, WireTemplatesAreBehaviorInvisible) {
  // The template-stamped wire path is a pure encoding shortcut: with the
  // knob on or off, under packet loss (which exercises reap + reuse, whose
  // order feeds future qnames) and across batch caps and thread counts, the
  // raw capture digest, behavioral digest, and rendered tables must be
  // bit-identical. Only the template_* counters may move.
  PipelineConfig base;
  base.scale = 16384;
  base.seed = 42;
  base.loss_rate = 0.02;  // loss + the latency model's jitter
  base.wire_templates = false;  // reference: the full encode path

  for (const unsigned threads : {1u, 4u}) {
    // Each thread count gets its own reference run: loss draws come from
    // per-shard RNG streams, so a lossy campaign is only reproducible at a
    // fixed shard layout (the loss-free invariance across thread counts is
    // MergedReportIdenticalForEveryThreadCount's job).
    PipelineConfig thr = base;
    thr.threads = threads;
    const ScanOutcome ref = run_measurement(paper_2018(), thr);
    const std::string ref_tables = rendered_tables(ref);
    const std::uint64_t raw_ref = ref.capture.digest();
    ASSERT_GT(ref.scan.r2_received, 100u) << threads;
    ASSERT_GT(ref.scan.timeouts_reaped, 0u) << threads;  // loss bites
    ASSERT_NE(ref.capture_digest, 0u) << threads;
    EXPECT_EQ(ref.scan.template_stamped, 0u) << threads;
    EXPECT_EQ(ref.auth.template_stamped, 0u) << threads;
    for (const bool templates : {false, true}) {
      for (const std::size_t cap :
           {std::size_t{1}, std::size_t{8}, std::size_t{64}, std::size_t{0}}) {
        PipelineConfig cfg = base;
        cfg.threads = threads;
        cfg.wire_templates = templates;
        cfg.loop_batch_cap = cap;
        cfg.delivery_group_cap = cap;
        const ScanOutcome o = run_measurement(paper_2018(), cfg);
        EXPECT_EQ(o.scan.q1_sent, ref.scan.q1_sent)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        EXPECT_EQ(o.scan.r2_received, ref.scan.r2_received)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        EXPECT_EQ(o.scan.timeouts_reaped, ref.scan.timeouts_reaped)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        EXPECT_EQ(o.auth.queries_received, ref.auth.queries_received)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        EXPECT_EQ(o.capture.digest(), raw_ref)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        EXPECT_EQ(o.capture_digest, ref.capture_digest)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        EXPECT_EQ(rendered_tables(o), ref_tables)
            << "threads=" << threads << " tpl=" << templates << " cap=" << cap;
        if (templates) {
          // The fast paths must actually engage — otherwise this test
          // proves nothing about them.
          EXPECT_GT(o.scan.template_stamped, 0u) << threads;
          EXPECT_GT(o.auth.template_stamped, 0u) << threads;
          EXPECT_EQ(o.scan.template_stamped + o.scan.template_fallback,
                    o.scan.q1_sent)
              << threads;
        } else {
          EXPECT_EQ(o.scan.template_stamped, 0u) << threads;
          EXPECT_EQ(o.auth.template_stamped, 0u) << threads;
        }
      }
    }
  }
}

TEST(PipelineSharding, TcpFallbackSweepIsPinned) {
  // The stream transport rides the same sharded event loops as the datagram
  // path: with a truncating UDP budget and DoTCP fallback enabled, every
  // thread count and batch cap must produce byte-identical rendered tables,
  // the same behavioral digest, and the same fallback counters — and the
  // fallback must actually engage, or the sweep proves nothing.
  PipelineConfig base;
  base.scale = 16384;
  base.seed = 42;
  base.threads = 1;
  base.udp_limit = 64;
  base.tcp_fallback = true;
  const ScanOutcome ref = run_measurement(paper_2018(), base);
  const std::string ref_tables = rendered_tables(ref);
  ASSERT_GT(ref.scan.r2_received, 100u);
  ASSERT_GT(ref.scan.tc_seen, 0u);
  ASSERT_GT(ref.scan.tcp_retries, 0u);
  ASSERT_GT(ref.scan.tcp_answers, 0u);
  ASSERT_NE(ref.capture_digest, 0u);

  for (const unsigned threads : {1u, 4u}) {
    for (const std::size_t cap :
         {std::size_t{1}, std::size_t{8}, std::size_t{64}, std::size_t{0}}) {
      PipelineConfig cfg = base;
      cfg.threads = threads;
      cfg.loop_batch_cap = cap;
      cfg.delivery_group_cap = cap;
      const ScanOutcome o = run_measurement(paper_2018(), cfg);
      EXPECT_EQ(o.scan.q1_sent, ref.scan.q1_sent)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.scan.r2_received, ref.scan.r2_received)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.scan.tc_seen, ref.scan.tc_seen)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.scan.tcp_retries, ref.scan.tcp_retries)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.scan.tcp_answers, ref.scan.tcp_answers)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.scan.tcp_failures, ref.scan.tcp_failures)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(o.capture_digest, ref.capture_digest)
          << "threads=" << threads << " cap=" << cap;
      EXPECT_EQ(rendered_tables(o), ref_tables)
          << "threads=" << threads << " cap=" << cap;
    }
  }

  // Differential control: the same truncating budget without the fallback
  // classifies the TC=1 stubs themselves — a genuinely different campaign.
  PipelineConfig off = base;
  off.tcp_fallback = false;
  const ScanOutcome o_off = run_measurement(paper_2018(), off);
  EXPECT_EQ(o_off.scan.tc_seen, 0u);
  EXPECT_EQ(o_off.scan.tcp_retries, 0u);
  EXPECT_NE(o_off.capture_digest, ref.capture_digest);
}

TEST(PipelineSharding, StreamingAnalysisIsExact) {
  // The tentpole differential: the default streaming path (classify at
  // capture, merge partial tables, retain nothing) must reproduce the
  // legacy post-hoc pass byte-for-byte — same rendered tables, same
  // behavioral digest — across thread counts, batch caps, wire templates,
  // and packet loss.
  //
  // Reference economy: a loss-free campaign's post-hoc tables are invariant
  // across thread counts / caps / templates (pinned by the other sharding
  // tests), so one reference covers all loss-free configs. Lossy campaigns
  // draw loss from per-shard RNG streams, so each thread count needs its
  // own lossy reference.
  constexpr std::uint64_t kScale = 32768;
  const auto posthoc_ref = [&](double loss, unsigned threads) {
    PipelineConfig cfg;
    cfg.scale = kScale;
    cfg.seed = 42;
    cfg.loss_rate = loss;
    cfg.threads = threads;
    cfg.posthoc_analysis = true;
    return run_measurement(paper_2018(), cfg);
  };
  const ScanOutcome ref_clean = posthoc_ref(0.0, 1);
  ASSERT_GT(ref_clean.scan.r2_received, 100u);
  ASSERT_GT(ref_clean.views.size(), 0u);  // post-hoc retains
  const std::string tables_clean = rendered_tables(ref_clean);

  for (const double loss : {0.0, 0.02}) {
    for (const unsigned threads : {1u, 4u}) {
      const ScanOutcome* ref = &ref_clean;
      ScanOutcome lossy_ref;
      std::string ref_tables = tables_clean;
      if (loss > 0.0) {
        lossy_ref = posthoc_ref(loss, threads);
        ref_tables = rendered_tables(lossy_ref);
        ref = &lossy_ref;
      }
      for (const bool templates : {true, false}) {
        for (const std::size_t cap :
             {std::size_t{1}, std::size_t{64}, std::size_t{0}}) {
          PipelineConfig cfg;
          cfg.scale = kScale;
          cfg.seed = 42;
          cfg.loss_rate = loss;
          cfg.threads = threads;
          cfg.wire_templates = templates;
          cfg.loop_batch_cap = cap;
          cfg.delivery_group_cap = cap;
          const ScanOutcome o = run_measurement(paper_2018(), cfg);
          const auto tag = [&]() {
            return "loss=" + std::to_string(loss) +
                   " threads=" + std::to_string(threads) +
                   " tpl=" + std::to_string(templates) +
                   " cap=" + std::to_string(cap);
          };
          // Streaming == post-hoc, byte for byte.
          EXPECT_EQ(rendered_tables(o), ref_tables) << tag();
          EXPECT_EQ(o.capture_digest, ref->capture_digest) << tag();
          EXPECT_EQ(o.analysis.r2_total, ref->analysis.r2_total) << tag();
          EXPECT_EQ(o.scan.r2_received, ref->scan.r2_received) << tag();
          // The default path materializes nothing per-response.
          EXPECT_TRUE(o.views.empty()) << tag();
          EXPECT_EQ(o.capture.retained_count(), 0u) << tag();
          EXPECT_GT(o.capture.packet_count(), 0u) << tag();
        }
      }
    }
  }
}

TEST(PipelineSharding, StreamingMaliciousViewsAreTheOneDivergence) {
  // finalize() leaves malicious.malicious_views empty (its only consumer,
  // the geo table, is streamed directly); the post-hoc pass still fills it.
  // Pin both sides so a future consumer of the vector fails loudly here
  // instead of silently reading an empty list.
  PipelineConfig cfg;
  cfg.scale = 32768;
  cfg.seed = 42;
  const ScanOutcome streamed = run_measurement(paper_2018(), cfg);
  cfg.posthoc_analysis = true;
  const ScanOutcome posthoc = run_measurement(paper_2018(), cfg);
  EXPECT_TRUE(streamed.analysis.malicious.malicious_views.empty());
  EXPECT_EQ(posthoc.analysis.malicious.malicious_views.size(),
            posthoc.analysis.malicious.total_r2);
  EXPECT_EQ(streamed.analysis.malicious.total_r2,
            posthoc.analysis.malicious.total_r2);
}

TEST(PipelineSharding, ShardedRunIsDeterministic) {
  PipelineConfig cfg;
  cfg.scale = 65536;
  cfg.seed = 7;
  cfg.threads = 4;
  const ScanOutcome a = run_measurement(paper_2018(), cfg);
  const ScanOutcome b = run_measurement(paper_2018(), cfg);
  // Same thread count, same seed: identical down to the raw capture digest
  // (which, unlike capture_digest, folds full payload bytes).
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.capture.digest(), b.capture.digest());
  EXPECT_EQ(a.capture_digest, b.capture_digest);
  EXPECT_EQ(a.scan.q1_sent, b.scan.q1_sent);
}

TEST(PipelineSharding, ThreadCountCappedByRawSteps) {
  PipelineConfig cfg;
  cfg.scale = 65536;
  cfg.seed = 7;
  cfg.threads = 0;  // normalized up to 1
  const ScanOutcome o = run_measurement(paper_2018(), cfg);
  EXPECT_EQ(o.threads_used, 1u);
}

}  // namespace
}  // namespace orp::core
