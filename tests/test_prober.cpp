#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "dns/codec.h"

#include "authns/auth_server.h"
#include "prober/permutation.h"
#include "prober/rate_limiter.h"
#include "prober/scanner.h"
#include "resolver/scripted_resolver.h"

namespace orp::prober {
namespace {

// ---- Number theory ---------------------------------------------------------------

TEST(Permutation, PrimeFactorsOfGroupOrder) {
  const auto factors = factorize(kPermutationPrime - 1);
  std::uint64_t product_check = 1;
  for (const auto f : factors) {
    // Each factor is prime (trial division would have split it otherwise).
    EXPECT_GT(f, 1u);
    product_check *= 1;  // factors are distinct primes, multiplicity dropped
  }
  (void)product_check;
  EXPECT_FALSE(factors.empty());
  EXPECT_EQ(factors.front(), 2u);  // p-1 is even
}

TEST(Permutation, Modpow) {
  EXPECT_EQ(modpow(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(modpow(3, 0, 97), 1u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(modpow(12345, kPermutationPrime - 1, kPermutationPrime), 1u);
}

TEST(Permutation, GeneratorDetection) {
  EXPECT_FALSE(is_generator(0));
  EXPECT_FALSE(is_generator(1));
  EXPECT_FALSE(is_generator(kPermutationPrime));
  // Any x^2 is a quadratic residue, hence not a generator of the full group.
  const std::uint64_t square = static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(1234567) * 1234567) % kPermutationPrime);
  EXPECT_FALSE(is_generator(square));
  const auto params = derive_params(99);
  EXPECT_TRUE(is_generator(params.generator));
}

TEST(Permutation, DeriveParamsDeterministic) {
  const auto a = derive_params(5);
  const auto b = derive_params(5);
  EXPECT_EQ(a.generator, b.generator);
  EXPECT_EQ(a.start, b.start);
  const auto c = derive_params(6);
  EXPECT_TRUE(c.generator != a.generator || c.start != a.start);
}

TEST(Permutation, NoRepeatsInPrefix) {
  CyclicPermutation perm(42);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 200000; ++i) {
    const auto v = perm.next_raw();
    EXPECT_GT(v, 0u);
    EXPECT_LT(v, kPermutationPrime);
    EXPECT_TRUE(seen.insert(v).second) << "repeat at step " << i;
  }
}

TEST(Permutation, RandomAccessMatchesIteration) {
  CyclicPermutation iter(7);
  const CyclicPermutation indexed(7);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(iter.next_raw(), indexed.raw_at(k)) << k;
  }
}

TEST(Permutation, SeekJumpsToAbsolutePosition) {
  CyclicPermutation walked(21);
  for (int i = 0; i < 5000; ++i) walked.next_raw();

  CyclicPermutation seeked(21);
  seeked.seek(5000);
  EXPECT_EQ(seeked.steps(), 5000u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seeked.next_raw(), walked.next_raw());
}

TEST(Permutation, ShardSlicesTileTheSequence) {
  // Shards seek to i*N/S and consume their slice; concatenated they must
  // reproduce the single-scanner walk exactly.
  const std::uint64_t total = 9973;  // deliberately not divisible by 4
  CyclicPermutation whole(33);
  std::vector<std::uint64_t> expected;
  for (std::uint64_t i = 0; i < total; ++i) expected.push_back(whole.next_raw());

  std::vector<std::uint64_t> tiled;
  const std::uint32_t shards = 4;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t begin = total * s / shards;
    const std::uint64_t end = total * (s + 1) / shards;
    CyclicPermutation p(33);
    p.seek(begin);
    for (std::uint64_t i = begin; i < end; ++i) tiled.push_back(p.next_raw());
  }
  EXPECT_EQ(tiled, expected);
}

TEST(Permutation, NextAddressSkipsOverflowValues) {
  CyclicPermutation perm(11);
  for (int i = 0; i < 100000; ++i) {
    const auto addr = perm.next_address();
    ASSERT_TRUE(addr.has_value());
  }
}

TEST(Permutation, AddressDistributionRoughlyUniform) {
  // First-octet histogram over 100k outputs should not be wildly skewed.
  CyclicPermutation perm(13);
  std::array<int, 4> quadrant{};
  for (int i = 0; i < 100000; ++i) {
    const auto addr = perm.next_address();
    ASSERT_TRUE(addr.has_value());
    ++quadrant[addr->octet(0) / 64];
  }
  for (const int q : quadrant) {
    EXPECT_GT(q, 22000);
    EXPECT_LT(q, 28000);
  }
}

// ---- RateLimiter ------------------------------------------------------------------

TEST(RateLimiter, GrantsWithinBurst) {
  RateLimiter limiter(1000.0, 100);
  net::SimTime ready;
  EXPECT_TRUE(limiter.try_acquire(100, net::SimTime::seconds(0), ready));
  EXPECT_FALSE(limiter.try_acquire(1, net::SimTime::seconds(0), ready));
  EXPECT_GT(ready, net::SimTime::seconds(0));
}

TEST(RateLimiter, RefillsAtRate) {
  RateLimiter limiter(1000.0, 100);
  net::SimTime ready;
  ASSERT_TRUE(limiter.try_acquire(100, net::SimTime::seconds(0), ready));
  // After 50ms, 50 tokens should be back.
  EXPECT_TRUE(limiter.try_acquire(50, net::SimTime::millis(50), ready));
  EXPECT_FALSE(limiter.try_acquire(60, net::SimTime::millis(50), ready));
}

TEST(RateLimiter, NextReadyEstimateIsSufficient) {
  RateLimiter limiter(100.0, 10);
  net::SimTime ready;
  ASSERT_TRUE(limiter.try_acquire(10, net::SimTime::seconds(0), ready));
  ASSERT_FALSE(limiter.try_acquire(10, net::SimTime::seconds(0), ready));
  EXPECT_TRUE(limiter.try_acquire(10, ready, ready));
}

TEST(RateLimiter, SustainedThroughputMatchesRate) {
  RateLimiter limiter(1000.0, 64);
  net::SimTime now;
  std::uint64_t sent = 0;
  while (now < net::SimTime::seconds(10.0)) {
    net::SimTime ready;
    if (limiter.try_acquire(64, now, ready)) {
      sent += 64;
    } else {
      now = ready;
    }
  }
  EXPECT_NEAR(static_cast<double>(sent), 10000.0, 150.0);
}

TEST(RateLimiter, RejectsNonPositiveRate) {
  EXPECT_THROW(RateLimiter(0.0), std::invalid_argument);
}

// ---- Scanner over a tiny handcrafted internet --------------------------------------

class ScannerFixture : public ::testing::Test {
 protected:
  ScannerFixture()
      : net(loop, 5),
        scheme(dns::DnsName::must_parse("ucfsealresearch.net"), 64, 7),
        auth(net, net::IPv4Addr(45, 76, 18, 21), scheme,
             net::SimTime::nanos(0)),
        hierarchy(resolver::build_hierarchy(net, scheme.sld(),
                                            scheme.sld().child("ns1"),
                                            auth.address(), 1)) {
    net.set_latency({net::SimTime::millis(2), net::SimTime::millis(1)});
    engine_config.hints = hierarchy.hints;
  }

  /// Plant a host at the k-th scan position (must be < raw_steps).
  net::IPv4Addr plant(std::uint64_t scan_seed, std::uint64_t k,
                      resolver::BehaviorProfile profile) {
    const auto params = derive_params(scan_seed);
    const CyclicPermutation perm(params.generator, params.start);
    std::uint64_t raw = perm.raw_at(k);
    while (raw >= (std::uint64_t{1} << 32) ||
           net::is_reserved(net::IPv4Addr(static_cast<std::uint32_t>(raw))) ||
           net.bound(net::Endpoint{
               net::IPv4Addr(static_cast<std::uint32_t>(raw)), net::kDnsPort}))
      raw = perm.raw_at(++k);
    const net::IPv4Addr addr(static_cast<std::uint32_t>(raw));
    hosts.push_back(std::make_unique<resolver::ResolverHost>(
        net, addr, std::move(profile), engine_config, hosts.size() + 1));
    return addr;
  }

  ScanConfig scan_config(std::uint64_t seed, std::uint64_t raw_steps) {
    ScanConfig cfg;
    cfg.seed = seed;
    cfg.rate_pps = 100000;
    cfg.raw_steps = raw_steps;
    cfg.response_timeout = net::SimTime::seconds(2.0);
    cfg.reap_interval = net::SimTime::millis(500);
    return cfg;
  }

  net::EventLoop loop;
  net::Network net;
  zone::SubdomainScheme scheme;
  authns::AuthServer auth;
  resolver::SimHierarchy hierarchy;
  resolver::EngineConfig engine_config;
  std::vector<std::unique_ptr<resolver::ResolverHost>> hosts;
};

// The scanner's patched-template fast path must emit wire bytes identical
// to the full make_query/encode path for every probe, and the canonical-key
// renderer must reproduce DnsName::canonical_key() exactly — including at
// the template's width boundaries (cluster 999 -> 1000, index overflow),
// where snprintf("%03u") grows naturally.
TEST_F(ScannerFixture, RenderedKeyMatchesCanonicalAcrossWidthBoundary) {
  const std::string canon0 = scheme.qname(zone::SubdomainId{0, 0}).canonical_key();
  QnameRenderer renderer;
  renderer.suffix = canon0.substr(13);  // past "or000.0000000"
  const zone::SubdomainId ids[] = {
      {0, 0},      {12, 34567},     {999, 0},  {999, 9999999},
      {1000, 0},   {1000, 9999999}, {1500, 7}, {999, 10000000},
  };
  for (const zone::SubdomainId id : ids) {
    char buf[dns::kMaxNameLength + 32];
    const std::uint64_t packed = (std::uint64_t{id.cluster} << 32) | id.index;
    EXPECT_EQ(renderer.render(packed, buf), scheme.qname(id).canonical_key())
        << id.cluster << "/" << id.index;
  }
}

TEST_F(ScannerFixture, ProbeWireMatchesFullEncodePath) {
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  plant(1, 100, honest);

  // Tap every accepted probe and re-encode it from its own decoded form:
  // the template patch must be byte-invisible.
  std::size_t probes_checked = 0;
  net.add_tap([&](net::SimTime, const net::Datagram& d) {
    if (d.src.addr != net::IPv4Addr(132, 170, 3, 44)) return;
    const auto decoded = dns::decode(d.payload);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->questions.size(), 1u);
    const dns::Message rebuilt = dns::make_query(decoded->header.id,
                                                 decoded->questions[0].qname,
                                                 decoded->questions[0].qtype);
    EXPECT_EQ(d.payload.to_vector(), dns::encode(rebuilt));
    ++probes_checked;
  });

  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), scan_config(1, 2000),
                  scheme);
  scanner.start([] {});
  loop.run();
  EXPECT_EQ(probes_checked, scanner.stats().q1_sent);
  EXPECT_GT(probes_checked, 1000u);
}

TEST_F(ScannerFixture, CountsProbesAndSkipsReserved) {
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), scan_config(1, 5000),
                  scheme);
  bool done = false;
  scanner.start([&] { done = true; });
  loop.run();
  EXPECT_TRUE(done);
  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.q1_sent + s.skipped_reserved + s.skipped_overflow, 5000u);
  // Roughly 13.8% of the space is reserved.
  EXPECT_GT(s.skipped_reserved, 500u);
  EXPECT_LT(s.skipped_reserved, 1000u);
  EXPECT_EQ(s.r2_received, 0u);  // nothing planted
}

TEST_F(ScannerFixture, CollectsAndMatchesResponses) {
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  plant(1, 100, honest);
  plant(1, 200, honest);
  resolver::BehaviorProfile refuser;
  refuser.answer = resolver::AnswerMode::kNone;
  refuser.rcode = dns::Rcode::kRefused;
  plant(1, 300, refuser);

  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), scan_config(1, 5000),
                  scheme);
  scanner.start([] {});
  loop.run();
  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.r2_received, 3u);
  EXPECT_EQ(s.r2_matched, 3u);
  EXPECT_EQ(s.r2_empty_question, 0u);
  EXPECT_EQ(scanner.responses().size(), 3u);
  // Two honest resolvers contacted the auth server; the refuser did not.
  EXPECT_EQ(auth.stats().queries_received, 2u);
}

TEST_F(ScannerFixture, EmptyQuestionResponsesCountedSeparately) {
  resolver::BehaviorProfile eq;
  eq.answer = resolver::AnswerMode::kNone;
  eq.omit_question = true;
  eq.rcode = dns::Rcode::kServFail;
  plant(1, 50, eq);
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), scan_config(1, 2000),
                  scheme);
  scanner.start([] {});
  loop.run();
  EXPECT_EQ(scanner.stats().r2_received, 1u);
  EXPECT_EQ(scanner.stats().r2_empty_question, 1u);
  EXPECT_EQ(scanner.stats().r2_matched, 0u);
}

TEST_F(ScannerFixture, SubdomainsOfSilentTargetsAreReused) {
  // Cluster size 64 but 4000+ probes: without reuse this would rotate ~60
  // times; with reuse the unanswered names cycle back. Reuse requires the
  // in-flight window (rate x timeout = 40 names) to fit inside one cluster
  // (64), the same headroom the paper engineered: 100k pps x 30s = 3M
  // in-flight vs 5M names per cluster.
  ScanConfig cfg = scan_config(1, 5000);
  cfg.rate_pps = 20;
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  int rotations = 0;
  scanner.set_rotate_callback([&](std::uint32_t c) {
    ++rotations;
    auth.load_cluster(c);
  });
  scanner.start([] {});
  loop.run();
  EXPECT_GT(scanner.clusters().stats().subdomains_reused, 3000u);
  EXPECT_LT(rotations, 10);
}

TEST_F(ScannerFixture, DeterministicAcrossRuns) {
  auto run_once = [this](std::uint64_t seed) {
    net::EventLoop l2;
    net::Network n2(l2, 5);
    authns::AuthServer a2(n2, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
    ScanConfig cfg = scan_config(seed, 3000);
    Scanner s(n2, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
    s.start([] {});
    l2.run();
    return s.stats().q1_sent;
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_NE(run_once(9), run_once(10));  // different permutation slice
}

TEST_F(ScannerFixture, ScanDurationMatchesRateArithmetic) {
  ScanConfig cfg = scan_config(1, 50000);
  cfg.rate_pps = 10000;
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  scanner.start([] {});
  loop.run();
  // ~43k probes at 10k pps ~= 4.3s, plus the 2s drain window.
  const double dur = scanner.stats().duration().as_seconds();
  EXPECT_GT(dur, 4.0);
  EXPECT_LT(dur, 8.0);
}

// ---- DoTCP fallback (TC=1 retry over the stream transport) -----------------
//
// The invariant under test everywhere below: EXACTLY one classified flow per
// answering target, no matter how the TCP retry settles (answer, refusal,
// SYN loss, duplicate UDP racing the retry).

/// A profile whose UDP answer is cut (question survives, answer section
/// does not): header 12 + probe question ~39 bytes fits in 55, the fixed A
/// record does not. Fabricated rather than recursive so the answer content
/// does not depend on zone-rotation timing at the fixture's auth server.
resolver::BehaviorProfile truncating_profile(bool tcp) {
  resolver::BehaviorProfile p;
  p.answer = resolver::AnswerMode::kFixedIp;
  p.fixed_answer = net::IPv4Addr(203, 0, 113, 77);
  p.udp_limit = 55;
  p.tcp = tcp;
  return p;
}

TEST_F(ScannerFixture, TcRetryClassifiesTheFullTcpAnswerOnce) {
  const net::IPv4Addr target = plant(1, 100, truncating_profile(true));
  ScanConfig cfg = scan_config(1, 2000);
  cfg.tcp_fallback = true;
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  bool done = false;
  scanner.start([&] { done = true; });
  loop.run();

  EXPECT_TRUE(done);
  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.r2_matched, 1u);
  EXPECT_EQ(s.tc_seen, 1u);
  EXPECT_EQ(s.tcp_retries, 1u);
  EXPECT_EQ(s.tcp_answers, 1u);
  EXPECT_EQ(s.tcp_failures, 0u);
  ASSERT_EQ(scanner.responses().size(), 1u);
  EXPECT_EQ(scanner.responses()[0].resolver, target);
  // The classified payload is the full TCP answer: TC clear, answer present.
  const auto decoded = dns::decode(scanner.responses()[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->header.flags.tc);
  EXPECT_EQ(decoded->answers.size(), 1u);
  EXPECT_EQ(net.streams().active_conns(), 0u);  // retry closed cleanly
}

TEST_F(ScannerFixture, TcThenConnectionRefusedClassifiesTheTruncatedUdp) {
  // The host truncates but does not listen on TCP (the CPE story): the
  // retry is refused and the held truncated payload is what gets classified.
  const net::IPv4Addr target = plant(1, 100, truncating_profile(false));
  ScanConfig cfg = scan_config(1, 2000);
  cfg.tcp_fallback = true;
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  scanner.start([] {});
  loop.run();

  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.tc_seen, 1u);
  EXPECT_EQ(s.tcp_retries, 1u);
  EXPECT_EQ(s.tcp_answers, 0u);
  EXPECT_EQ(s.tcp_failures, 1u);
  ASSERT_EQ(scanner.responses().size(), 1u);
  EXPECT_EQ(scanner.responses()[0].resolver, target);
  const auto decoded = dns::decode(scanner.responses()[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.flags.tc);
  EXPECT_TRUE(decoded->answers.empty());
}

TEST_F(ScannerFixture, TcThenSynLossTimesOutAndStillFinishes) {
  plant(1, 100, truncating_profile(true));
  // Kill every SYN on the stream substream only — UDP is untouched, so the
  // truncated R2 still arrives and opens the retry.
  net.streams().set_loss_rate(1.0);
  ScanConfig cfg = scan_config(1, 2000);
  cfg.tcp_fallback = true;
  cfg.tcp_timeout = net::SimTime::seconds(3.0);
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  bool done = false;
  scanner.start([&] { done = true; });
  loop.run();

  // The scan must not finish until the orphaned retry times out.
  EXPECT_TRUE(done);
  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.tc_seen, 1u);
  EXPECT_EQ(s.tcp_retries, 1u);
  EXPECT_EQ(s.tcp_answers, 0u);
  EXPECT_EQ(s.tcp_failures, 1u);
  EXPECT_EQ(net.streams().stats().syn_lost, 1u);
  ASSERT_EQ(scanner.responses().size(), 1u);
  const auto decoded = dns::decode(scanner.responses()[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.flags.tc);
  EXPECT_EQ(net.streams().active_conns(), 0u);
}

TEST_F(ScannerFixture, DuplicateR2WhileRetryPendsIsCountedNeverClassified) {
  const net::IPv4Addr target = plant(1, 100, truncating_profile(true));
  // Replay the truncated R2 at the scanner while its TCP retry is pending
  // (the retry takes ~40 ms of handshake + resolver delay; the duplicate
  // lands ~2 ms after the original).
  bool duplicated = false;
  net.add_tap([&](net::SimTime, const net::Datagram& d) {
    if (duplicated || d.src.addr != target) return;
    const auto p = d.payload.span();
    if (p.size() < 12 || (p[2] & 0x02) == 0) return;  // not the TC answer
    duplicated = true;
    net.send(d.src, d.dst, p);
  });
  ScanConfig cfg = scan_config(1, 2000);
  cfg.tcp_fallback = true;
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  scanner.start([] {});
  loop.run();

  ASSERT_TRUE(duplicated);
  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.r2_received, 2u);  // original + duplicate
  EXPECT_EQ(s.tc_seen, 1u);
  EXPECT_EQ(s.tcp_retries, 1u);
  EXPECT_EQ(s.tcp_duplicate_r2, 1u);
  EXPECT_EQ(s.tcp_answers, 1u);
  // Exactly one classified flow: the TCP answer. The duplicate was only
  // counted.
  ASSERT_EQ(scanner.responses().size(), 1u);
  const auto decoded = dns::decode(scanner.responses()[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->header.flags.tc);
}

TEST_F(ScannerFixture, FallbackDisabledTreatsTcAnswersAsFinal) {
  // Control: same truncation budget, fallback off — the truncated answer is
  // classified as-is and no stream machinery is touched. The host does not
  // listen on TCP either, so the StreamNet is never even constructed.
  plant(1, 100, truncating_profile(false));
  Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), scan_config(1, 2000),
                  scheme);
  scanner.start([] {});
  loop.run();

  const ScanStats& s = scanner.stats();
  EXPECT_EQ(s.tc_seen, 0u);
  EXPECT_EQ(s.tcp_retries, 0u);
  ASSERT_EQ(scanner.responses().size(), 1u);
  const auto decoded = dns::decode(scanner.responses()[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.flags.tc);
  // The scanner never even forked the stream substream.
  EXPECT_EQ(net.streams_or_null(), nullptr);
}

TEST_F(ScannerFixture, FallbackScanIsDeterministic) {
  auto run_once = [this](std::uint64_t seed) {
    net::EventLoop l2;
    net::Network n2(l2, 5);
    n2.set_latency({net::SimTime::millis(2), net::SimTime::millis(1)});
    authns::AuthServer a2(n2, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
    auto h2 = resolver::build_hierarchy(n2, scheme.sld(),
                                        scheme.sld().child("ns1"),
                                        a2.address(), 1);
    resolver::EngineConfig ec;
    ec.hints = h2.hints;
    const auto params = derive_params(seed);
    const CyclicPermutation perm(params.generator, params.start);
    std::uint64_t k = 100, raw = perm.raw_at(k);
    while (raw >= (std::uint64_t{1} << 32) ||
           net::is_reserved(net::IPv4Addr(static_cast<std::uint32_t>(raw))) ||
           n2.bound(net::Endpoint{net::IPv4Addr(static_cast<std::uint32_t>(raw)),
                                  net::kDnsPort}))
      raw = perm.raw_at(++k);
    resolver::ResolverHost host(n2, net::IPv4Addr(static_cast<std::uint32_t>(raw)),
                                truncating_profile(true), ec, 1);
    ScanConfig cfg = scan_config(seed, 2000);
    cfg.tcp_fallback = true;
    Scanner s(n2, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
    s.start([] {});
    l2.run();
    std::vector<std::uint8_t> bytes;
    for (const R2Record& r : s.responses())
      bytes.insert(bytes.end(), r.payload.begin(), r.payload.end());
    return std::tuple{s.stats().tcp_answers, l2.now().as_seconds(), bytes};
  };
  EXPECT_EQ(run_once(9), run_once(9));
}

}  // namespace
}  // namespace orp::prober
