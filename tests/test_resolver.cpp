#include <gtest/gtest.h>

#include "analysis/flow.h"
#include "authns/auth_server.h"
#include "dns/builder.h"
#include "resolver/cache.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"

namespace orp::resolver {
namespace {

// ---- DnsCache -----------------------------------------------------------------

dns::ResourceRecord a_record(const char* name, std::uint32_t ttl) {
  return dns::ResourceRecord{dns::DnsName::must_parse(name), dns::RRType::kA,
                             dns::RRClass::kIN, ttl,
                             dns::ARdata{net::IPv4Addr(1, 2, 3, 4)}};
}

TEST(DnsCache, HitAfterPut) {
  DnsCache cache(10);
  const auto name = dns::DnsName::must_parse("a.example.net");
  cache.put(name, dns::RRType::kA, {a_record("a.example.net", 60)},
            net::SimTime::seconds(0));
  EXPECT_TRUE(cache.get(name, dns::RRType::kA, net::SimTime::seconds(30))
                  .has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(DnsCache, ExpiresAtTtl) {
  DnsCache cache(10);
  const auto name = dns::DnsName::must_parse("a.example.net");
  cache.put(name, dns::RRType::kA, {a_record("a.example.net", 60)},
            net::SimTime::seconds(0));
  EXPECT_FALSE(cache.get(name, dns::RRType::kA, net::SimTime::seconds(60))
                   .has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(DnsCache, MinimumTtlOfSetGoverns) {
  DnsCache cache(10);
  const auto name = dns::DnsName::must_parse("a.example.net");
  cache.put(name, dns::RRType::kA,
            {a_record("a.example.net", 60), a_record("a.example.net", 10)},
            net::SimTime::seconds(0));
  EXPECT_FALSE(cache.get(name, dns::RRType::kA, net::SimTime::seconds(11))
                   .has_value());
}

TEST(DnsCache, TypeIsPartOfTheKey) {
  DnsCache cache(10);
  const auto name = dns::DnsName::must_parse("a.example.net");
  cache.put(name, dns::RRType::kA, {a_record("a.example.net", 60)},
            net::SimTime::seconds(0));
  EXPECT_FALSE(cache.get(name, dns::RRType::kTXT, net::SimTime::seconds(1))
                   .has_value());
}

TEST(DnsCache, CaseInsensitiveKey) {
  DnsCache cache(10);
  cache.put(dns::DnsName::must_parse("A.Example.NET"), dns::RRType::kA,
            {a_record("a.example.net", 60)}, net::SimTime::seconds(0));
  EXPECT_TRUE(cache
                  .get(dns::DnsName::must_parse("a.example.net"),
                       dns::RRType::kA, net::SimTime::seconds(1))
                  .has_value());
}

TEST(DnsCache, LruEvictionAtCapacity) {
  DnsCache cache(2);
  const auto t = net::SimTime::seconds(0);
  cache.put(dns::DnsName::must_parse("a.net"), dns::RRType::kA,
            {a_record("a.net", 300)}, t);
  cache.put(dns::DnsName::must_parse("b.net"), dns::RRType::kA,
            {a_record("b.net", 300)}, t);
  // Touch a so b becomes least-recently-used.
  (void)cache.get(dns::DnsName::must_parse("a.net"), dns::RRType::kA, t);
  cache.put(dns::DnsName::must_parse("c.net"), dns::RRType::kA,
            {a_record("c.net", 300)}, t);
  EXPECT_TRUE(cache.get(dns::DnsName::must_parse("a.net"), dns::RRType::kA, t)
                  .has_value());
  EXPECT_FALSE(cache.get(dns::DnsName::must_parse("b.net"), dns::RRType::kA, t)
                   .has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(DnsCache, PurgeExpiredSweeps) {
  DnsCache cache(10);
  cache.put(dns::DnsName::must_parse("a.net"), dns::RRType::kA,
            {a_record("a.net", 10)}, net::SimTime::seconds(0));
  cache.put(dns::DnsName::must_parse("b.net"), dns::RRType::kA,
            {a_record("b.net", 1000)}, net::SimTime::seconds(0));
  EXPECT_EQ(cache.purge_expired(net::SimTime::seconds(100)), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCache, ZeroCapacityNeverStores) {
  DnsCache cache(0);
  cache.put(dns::DnsName::must_parse("a.net"), dns::RRType::kA,
            {a_record("a.net", 300)}, net::SimTime::seconds(0));
  EXPECT_EQ(cache.size(), 0u);
}

// ---- Full resolution over the simulated hierarchy -------------------------------

class ResolutionFixture : public ::testing::Test {
 protected:
  ResolutionFixture()
      : net(loop, 5),
        scheme(dns::DnsName::must_parse("ucfsealresearch.net"), 1000, 7),
        auth(net, net::IPv4Addr(45, 76, 18, 21), scheme,
             net::SimTime::nanos(0)),
        hierarchy(build_hierarchy(net, scheme.sld(),
                                  scheme.sld().child("ns1"), auth.address(),
                                  2)) {
    net.set_latency({net::SimTime::millis(5), net::SimTime::millis(2)});
    engine_config.hints = hierarchy.hints;
  }

  net::EventLoop loop;
  net::Network net;
  zone::SubdomainScheme scheme;
  authns::AuthServer auth;
  SimHierarchy hierarchy;
  EngineConfig engine_config;
};

TEST_F(ResolutionFixture, WalksRootTldAuthAndAnswers) {
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), engine_config, 1);
  const zone::SubdomainId id{0, 17};
  std::optional<ResolutionOutcome> result;
  engine.resolve(scheme.qname(id), dns::RRType::kA,
                 [&](const ResolutionOutcome& o) { result = o; });
  loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success);
  ASSERT_FALSE(result->answers.empty());
  const auto* a = std::get_if<dns::ARdata>(&result->answers[0].rdata);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->addr, scheme.ground_truth(id));
  // Exactly one query to each tier: root, TLD, auth.
  EXPECT_EQ(engine.upstream_queries(), 3u);
  EXPECT_EQ(hierarchy.net_tld->queries(), 1u);
  EXPECT_EQ(auth.stats().queries_received, 1u);
}

TEST_F(ResolutionFixture, SecondResolutionUsesCachedDelegation) {
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), engine_config, 1);
  int done = 0;
  engine.resolve(scheme.qname({0, 1}), dns::RRType::kA,
                 [&](const ResolutionOutcome&) { ++done; });
  loop.run();
  const auto after_first = engine.upstream_queries();
  engine.resolve(scheme.qname({0, 2}), dns::RRType::kA,
                 [&](const ResolutionOutcome&) { ++done; });
  loop.run();
  EXPECT_EQ(done, 2);
  // The cached ns1 glue lets the second resolution go straight to the auth.
  EXPECT_EQ(engine.upstream_queries() - after_first, 1u);
  EXPECT_EQ(hierarchy.net_tld->queries(), 1u);
}

TEST_F(ResolutionFixture, CachedAnswerShortCircuits) {
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), engine_config, 1);
  const auto qname = scheme.qname({0, 3});
  int done = 0;
  engine.resolve(qname, dns::RRType::kA,
                 [&](const ResolutionOutcome&) { ++done; });
  loop.run();
  const auto queries = engine.upstream_queries();
  engine.resolve(qname, dns::RRType::kA,
                 [&](const ResolutionOutcome& o) {
                   ++done;
                   EXPECT_TRUE(o.success);
                 });
  loop.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(engine.upstream_queries(), queries);  // pure cache hit
}

TEST_F(ResolutionFixture, NxdomainPropagates) {
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), engine_config, 1);
  std::optional<ResolutionOutcome> result;
  engine.resolve(dns::DnsName::must_parse("or099.0000000.ucfsealresearch.net"),
                 dns::RRType::kA,
                 [&](const ResolutionOutcome& o) { result = o; });
  loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->rcode, dns::Rcode::kNXDomain);
}

TEST_F(ResolutionFixture, UnreachableServersTimeOutToServFail) {
  EngineConfig cfg = engine_config;
  cfg.hints.roots = {net::IPv4Addr(203, 1, 1, 1)};  // nobody home
  cfg.query_timeout = net::SimTime::millis(50);
  cfg.max_retries = 1;
  IterativeEngine engine(net, net::IPv4Addr(8, 8, 8, 8), cfg, 1);
  std::optional<ResolutionOutcome> result;
  engine.resolve(scheme.qname({0, 1}), dns::RRType::kA,
                 [&](const ResolutionOutcome& o) { result = o; });
  loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->success);
  EXPECT_EQ(result->rcode, dns::Rcode::kServFail);
}

// ---- ResolverHost behavior profiles ------------------------------------------------

class HostFixture : public ResolutionFixture {
 protected:
  /// Probe `host` once and return the decoded R2, if any.
  std::optional<dns::Message> probe(net::IPv4Addr host_addr,
                                    const dns::DnsName& qname) {
    std::optional<dns::Message> response;
    const net::Endpoint prober{net::IPv4Addr(132, 170, 3, 44), 54321};
    net.bind(prober, [&](const net::Datagram& d) {
      const auto decoded = dns::decode(d.payload);
      if (decoded) response = *decoded;
    });
    net.send(net::Datagram{prober, net::Endpoint{host_addr, net::kDnsPort},
                           dns::encode(dns::make_query(99, qname))});
    loop.run();
    net.unbind(prober);
    return response;
  }

  BehaviorProfile base_profile(AnswerMode mode) {
    BehaviorProfile p;
    p.answer = mode;
    p.ra = true;
    return p;
  }
};

TEST_F(HostFixture, RecursiveHostReturnsCorrectAnswer) {
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7),
                    base_profile(AnswerMode::kRecursive), engine_config, 1);
  const zone::SubdomainId id{0, 9};
  const auto r2 = probe(host.address(), scheme.qname(id));
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->header.flags.ra);
  ASSERT_TRUE(r2->first_a_answer().has_value());
  EXPECT_EQ(*r2->first_a_answer(), scheme.ground_truth(id));
}

TEST_F(HostFixture, DeviantFlagsAreStamped) {
  BehaviorProfile p = base_profile(AnswerMode::kRecursive);
  p.ra = false;  // answers while claiming no recursion available
  p.aa = true;   // claims authority it does not have
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_FALSE(r2->header.flags.ra);
  EXPECT_TRUE(r2->header.flags.aa);
  EXPECT_TRUE(r2->has_answer());
}

TEST_F(HostFixture, FixedIpManipulatorNeverContactsAuth) {
  BehaviorProfile p = base_profile(AnswerMode::kFixedIp);
  p.fixed_answer = net::IPv4Addr(208, 91, 197, 91);
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->first_a_answer()->to_string(), "208.91.197.91");
  // The paper's manipulation discriminator: no Q2 ever reached the auth.
  EXPECT_EQ(auth.stats().queries_received, 0u);
}

TEST_F(HostFixture, SilentHostNeverResponds) {
  BehaviorProfile p = base_profile(AnswerMode::kNone);
  p.respond = false;
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  EXPECT_FALSE(probe(host.address(), scheme.qname({0, 9})).has_value());
  EXPECT_EQ(host.stats().queries, 1u);
  EXPECT_EQ(host.stats().responses, 0u);
}

TEST_F(HostFixture, RefuserSendsRcodeWithoutAnswer) {
  BehaviorProfile p = base_profile(AnswerMode::kNone);
  p.rcode = dns::Rcode::kRefused;
  p.ra = false;
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->header.flags.rcode, dns::Rcode::kRefused);
  EXPECT_FALSE(r2->has_answer());
}

TEST_F(HostFixture, UrlAnswererReturnsCname) {
  BehaviorProfile p = base_profile(AnswerMode::kUrl);
  p.text_answer = "u.dcoin.co";
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  ASSERT_EQ(r2->answers.size(), 1u);
  EXPECT_EQ(r2->answers[0].type, dns::RRType::kCNAME);
}

TEST_F(HostFixture, GarbageStringAnswererReturnsTxt) {
  BehaviorProfile p = base_profile(AnswerMode::kGarbageString);
  p.text_answer = "wild";
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  ASSERT_EQ(r2->answers.size(), 1u);
  EXPECT_EQ(r2->answers[0].type, dns::RRType::kTXT);
}

TEST_F(HostFixture, UndecodableAnswerFailsDecodeButKeepsQuestion) {
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7),
                    base_profile(AnswerMode::kUndecodable), engine_config, 1);
  std::vector<std::uint8_t> raw;
  const net::Endpoint prober{net::IPv4Addr(132, 170, 3, 44), 54321};
  net.bind(prober, [&](const net::Datagram& d) { raw = d.payload.to_vector(); });
  net.send(net::Datagram{prober, net::Endpoint{host.address(), net::kDnsPort},
                         dns::encode(dns::make_query(99, scheme.qname({0, 9})))});
  loop.run();
  ASSERT_FALSE(raw.empty());
  EXPECT_FALSE(dns::decode(raw).has_value());
  const auto partial = dns::decode_partial(raw);
  EXPECT_EQ(partial.failed_at, dns::DecodeStage::kAnswer);
  EXPECT_EQ(partial.message.questions.size(), 1u);
}

TEST_F(HostFixture, EmptyQuestionResponderOmitsQuestion) {
  BehaviorProfile p = base_profile(AnswerMode::kNone);
  p.omit_question = true;
  p.rcode = dns::Rcode::kServFail;
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->questions.empty());
  EXPECT_EQ(r2->header.flags.rcode, dns::Rcode::kServFail);
}

TEST_F(HostFixture, BackendFanMultipliesAuthQueries) {
  BehaviorProfile p = base_profile(AnswerMode::kRecursive);
  p.backend_fan = 5;
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r2 = probe(host.address(), scheme.qname({0, 9}));
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->has_answer());
  EXPECT_EQ(auth.stats().queries_received, 5u);
  EXPECT_EQ(host.stats().responses, 1u);  // still exactly one R2
}

TEST_F(HostFixture, ForwarderRelaysUpstreamAnswerWithOwnStamp) {
  ResolverHost upstream(net, net::IPv4Addr(6, 6, 6, 6),
                        base_profile(AnswerMode::kRecursive), engine_config,
                        1);
  BehaviorProfile p = base_profile(AnswerMode::kRecursive);
  p.forwarder = true;
  p.upstream = upstream.address();
  p.aa = true;  // CPE boxes stamp whatever they like
  ResolverHost fwd(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 2);
  const zone::SubdomainId id{0, 21};
  const auto r2 = probe(fwd.address(), scheme.qname(id));
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(r2->header.flags.aa);
  ASSERT_TRUE(r2->first_a_answer().has_value());
  EXPECT_EQ(*r2->first_a_answer(), scheme.ground_truth(id));
  EXPECT_EQ(fwd.stats().forwarded, 1u);
  EXPECT_EQ(auth.stats().queries_received, 1u);  // recursion done upstream
}

}  // namespace
}  // namespace orp::resolver
