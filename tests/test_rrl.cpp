#include <gtest/gtest.h>

#include <vector>

#include "authns/auth_server.h"
#include "dns/builder.h"
#include "resolver/root_tld.h"
#include "resolver/rrl.h"
#include "resolver/scripted_resolver.h"

namespace orp::resolver {
namespace {

// ---- ResponseRateLimiter unit behavior ------------------------------------------

TEST(Rrl, DisabledAlwaysSends) {
  ResponseRateLimiter limiter(RrlConfig{});
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(limiter.check(net::IPv4Addr(1, 1, 1, 1), net::SimTime()),
              RrlAction::kSend);
  EXPECT_EQ(limiter.sent(), 100u);
}

TEST(Rrl, BurstThenSuppression) {
  RrlConfig cfg;
  cfg.enabled = true;
  cfg.responses_per_second = 1;
  cfg.burst = 5;
  cfg.slip = 2;
  ResponseRateLimiter limiter(cfg);
  const net::IPv4Addr client(1, 1, 1, 1);
  int sent = 0;
  int suppressed = 0;
  for (int i = 0; i < 20; ++i) {
    const auto action = limiter.check(client, net::SimTime::millis(i));
    if (action == RrlAction::kSend)
      ++sent;
    else
      ++suppressed;
  }
  EXPECT_EQ(sent, 5);  // the burst
  EXPECT_EQ(suppressed, 15);
  // slip=2: every second suppressed response is a slip.
  EXPECT_EQ(limiter.slipped(), 7u);
  EXPECT_EQ(limiter.dropped(), 8u);
}

TEST(Rrl, TokensRefillOverTime) {
  RrlConfig cfg;
  cfg.enabled = true;
  cfg.responses_per_second = 10;
  cfg.burst = 2;
  ResponseRateLimiter limiter(cfg);
  const net::IPv4Addr client(1, 1, 1, 1);
  EXPECT_EQ(limiter.check(client, net::SimTime::seconds(0)), RrlAction::kSend);
  EXPECT_EQ(limiter.check(client, net::SimTime::seconds(0)), RrlAction::kSend);
  EXPECT_NE(limiter.check(client, net::SimTime::seconds(0)), RrlAction::kSend);
  // 100ms at 10 rps refills one token.
  EXPECT_EQ(limiter.check(client, net::SimTime::millis(150)),
            RrlAction::kSend);
}

TEST(Rrl, BudgetsArePerClient) {
  RrlConfig cfg;
  cfg.enabled = true;
  cfg.responses_per_second = 1;
  cfg.burst = 1;
  ResponseRateLimiter limiter(cfg);
  EXPECT_EQ(limiter.check(net::IPv4Addr(1, 1, 1, 1), net::SimTime()),
            RrlAction::kSend);
  EXPECT_NE(limiter.check(net::IPv4Addr(1, 1, 1, 1), net::SimTime()),
            RrlAction::kSend);
  // A different client has its own bucket.
  EXPECT_EQ(limiter.check(net::IPv4Addr(2, 2, 2, 2), net::SimTime()),
            RrlAction::kSend);
}

TEST(Rrl, CheckBatchMatchesSequentialChecks) {
  // check_batch over a same-instant burst must be action-for-action and
  // counter-for-counter identical to calling check() that many times —
  // including the burst spanning the budget edge (sends, then the
  // slip/drop alternation).
  RrlConfig cfg;
  cfg.enabled = true;
  cfg.responses_per_second = 1;
  cfg.burst = 3;
  cfg.slip = 2;
  ResponseRateLimiter seq(cfg);
  ResponseRateLimiter bat(cfg);
  const net::IPv4Addr client(1, 1, 1, 1);
  const net::SimTime now = net::SimTime::millis(5);

  std::vector<RrlAction> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(seq.check(client, now));
  std::vector<RrlAction> got(10);
  bat.check_batch(client, now, got);

  EXPECT_EQ(got, expected);
  EXPECT_EQ(bat.sent(), seq.sent());
  EXPECT_EQ(bat.dropped(), seq.dropped());
  EXPECT_EQ(bat.slipped(), seq.slipped());

  // A later burst refills once for the whole batch, like the first check()
  // of a sequential run would.
  std::vector<RrlAction> expected2;
  for (int i = 0; i < 4; ++i)
    expected2.push_back(seq.check(client, net::SimTime::seconds(3)));
  std::vector<RrlAction> got2(4);
  bat.check_batch(client, net::SimTime::seconds(3), got2);
  EXPECT_EQ(got2, expected2);
  EXPECT_EQ(bat.sent(), seq.sent());
  EXPECT_EQ(bat.dropped(), seq.dropped());
  EXPECT_EQ(bat.slipped(), seq.slipped());
}

TEST(Rrl, CheckBatchDisabledSendsAll) {
  ResponseRateLimiter limiter(RrlConfig{});
  std::vector<RrlAction> out(7, RrlAction::kDrop);
  limiter.check_batch(net::IPv4Addr(1, 1, 1, 1), net::SimTime(), out);
  for (const RrlAction a : out) EXPECT_EQ(a, RrlAction::kSend);
  EXPECT_EQ(limiter.sent(), 7u);
}

TEST(Rrl, SlipZeroDropsEverything) {
  RrlConfig cfg;
  cfg.enabled = true;
  cfg.responses_per_second = 1;
  cfg.burst = 1;
  cfg.slip = 0;
  ResponseRateLimiter limiter(cfg);
  const net::IPv4Addr client(1, 1, 1, 1);
  (void)limiter.check(client, net::SimTime());
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(limiter.check(client, net::SimTime()), RrlAction::kDrop);
  EXPECT_EQ(limiter.slipped(), 0u);
}

// ---- version.bind fingerprinting --------------------------------------------------

class ChaosFixture : public ::testing::Test {
 protected:
  ChaosFixture() : net(loop, 3) {
    net.set_latency({net::SimTime::millis(1), net::SimTime::nanos(0)});
  }

  std::optional<dns::Message> chaos_query(net::IPv4Addr host) {
    std::optional<dns::Message> response;
    const net::Endpoint prober{net::IPv4Addr(9, 9, 9, 9), 4000};
    net.bind(prober, [&](const net::Datagram& d) {
      if (const auto decoded = dns::decode(d.payload)) response = *decoded;
    });
    dns::Message q =
        dns::make_query(5, dns::DnsName::must_parse("version.bind"),
                        dns::RRType::kTXT);
    q.questions[0].qclass = dns::RRClass::kCH;
    net.send(net::Datagram{prober, net::Endpoint{host, net::kDnsPort},
                           dns::encode(q)});
    loop.run();
    net.unbind(prober);
    return response;
  }

  net::EventLoop loop;
  net::Network net;
  resolver::EngineConfig engine_config;
};

TEST_F(ChaosFixture, BannerDisclosedWhenConfigured) {
  BehaviorProfile p;
  p.answer = AnswerMode::kRecursive;
  p.version = "9.10.3-P4-Ubuntu";
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r = chaos_query(host.address());
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->has_answer());
  EXPECT_EQ(r->answers[0].rrclass, dns::RRClass::kCH);
  const auto* txt = std::get_if<dns::TxtRdata>(&r->answers[0].rdata);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(txt->strings[0], "9.10.3-P4-Ubuntu");
}

TEST_F(ChaosFixture, HiddenVersionIsRefused) {
  BehaviorProfile p;
  p.answer = AnswerMode::kRecursive;  // version left empty
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  const auto r = chaos_query(host.address());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->header.flags.rcode, dns::Rcode::kRefused);
  EXPECT_FALSE(r->has_answer());
}

TEST_F(ChaosFixture, ChaosQueryNeverTriggersRecursion) {
  // A CH-class query must not reach the IN-class resolution machinery.
  BehaviorProfile p;
  p.answer = AnswerMode::kRecursive;
  p.version = "named";
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  (void)chaos_query(host.address());
  EXPECT_EQ(host.stats().recursions, 0u);
}

TEST_F(ChaosFixture, OtherChaosNamesRefused) {
  BehaviorProfile p;
  p.version = "named";
  p.answer = AnswerMode::kNone;
  ResolverHost host(net, net::IPv4Addr(7, 7, 7, 7), p, engine_config, 1);
  std::optional<dns::Message> response;
  const net::Endpoint prober{net::IPv4Addr(9, 9, 9, 9), 4001};
  net.bind(prober, [&](const net::Datagram& d) {
    if (const auto decoded = dns::decode(d.payload)) response = *decoded;
  });
  dns::Message q = dns::make_query(
      5, dns::DnsName::must_parse("hostname.bind"), dns::RRType::kTXT);
  q.questions[0].qclass = dns::RRClass::kCH;
  net.send(net::Datagram{prober, net::Endpoint{host.address(), net::kDnsPort},
                         dns::encode(q)});
  loop.run();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->header.flags.rcode, dns::Rcode::kRefused);
}

}  // namespace
}  // namespace orp::resolver
