// Scale-invariance sweep: the pipeline's structural invariants must hold at
// every sampling granularity, not just the bench default.
#include <gtest/gtest.h>

#include "core/paper_data.h"
#include "core/pipeline.h"

namespace orp::core {
namespace {

class ScaleSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static const ScanOutcome& outcome_for(std::uint64_t scale) {
    static std::map<std::uint64_t, ScanOutcome> cache;
    const auto it = cache.find(scale);
    if (it != cache.end()) return it->second;
    PipelineConfig cfg;
    cfg.scale = scale;
    cfg.seed = 42;
    return cache.emplace(scale, run_measurement(paper_2018(), cfg))
        .first->second;
  }
};

TEST_P(ScaleSweep, EveryHostAnswersExactlyOnce) {
  const ScanOutcome& o = outcome_for(GetParam());
  EXPECT_EQ(o.scan.r2_received, o.spec.hosts.size());
  EXPECT_EQ(o.scan.r2_matched + o.scan.r2_empty_question, o.scan.r2_received);
  EXPECT_EQ(o.scan.r2_unmatched, 0u);
}

TEST_P(ScaleSweep, ProbeCountTracksTheProbeableSpace) {
  const ScanOutcome& o = outcome_for(GetParam());
  const double expected = static_cast<double>(paper_2018().q1) /
                          static_cast<double>(GetParam());
  EXPECT_NEAR(static_cast<double>(o.scan.q1_sent), expected,
              expected * 0.01 + 64);
}

TEST_P(ScaleSweep, AnswerIdentityHolds) {
  const auto& a = outcome_for(GetParam()).analysis.answers;
  EXPECT_EQ(a.r2, a.without_answer + a.with_answer());
  EXPECT_GT(a.correct, 0u);
  EXPECT_GT(a.incorrect, 0u);
  EXPECT_GT(a.without_answer, 0u);
}

TEST_P(ScaleSweep, FlagMarginsSumToAnswerTotals) {
  const auto& analysis = outcome_for(GetParam()).analysis;
  const auto& a = analysis.answers;
  EXPECT_EQ(analysis.ra.bit0.correct + analysis.ra.bit1.correct, a.correct);
  EXPECT_EQ(analysis.ra.bit0.incorrect + analysis.ra.bit1.incorrect,
            a.incorrect);
  EXPECT_EQ(analysis.aa.bit0.without_answer + analysis.aa.bit1.without_answer,
            a.without_answer);
}

TEST_P(ScaleSweep, RareBehaviorsStayRepresented) {
  const auto& analysis = outcome_for(GetParam()).analysis;
  // keep_nonzero guarantees: the paper's anomalous rcode combinations and
  // the malicious subpopulation survive any sampling granularity.
  EXPECT_GT(analysis.rcodes.error_rcode_with_answer(), 0u);
  EXPECT_GT(analysis.rcodes.noerror_without_answer(), 0u);
  EXPECT_GE(analysis.malicious.total_r2, 1u);
  EXPECT_EQ(analysis.malicious.rcode_noerror, analysis.malicious.total_r2);
}

TEST_P(ScaleSweep, MajorityShapesSurviveSampling) {
  const auto& analysis = outcome_for(GetParam()).analysis;
  // Correct answers dominate incorrect (96:4 at full scale). At extreme
  // granularities the keep_nonzero floors inflate the rare incorrect cells,
  // so the dominance ratio is only asserted where the sample can carry it.
  if (analysis.answers.r2 > 300) {
    EXPECT_GT(analysis.answers.correct, analysis.answers.incorrect * 5);
  } else {
    EXPECT_GT(analysis.answers.correct, analysis.answers.incorrect);
  }
  // RA=1 carries the overwhelming majority of correct answers.
  EXPECT_GT(analysis.ra.bit1.correct, analysis.ra.bit0.correct);
  // Refused dominates the no-answer rcodes.
  EXPECT_GT(analysis.rcodes.row(dns::Rcode::kRefused).without_answer,
            analysis.rcodes.row(dns::Rcode::kNXDomain).without_answer);
}

INSTANTIATE_TEST_SUITE_P(Granularities, ScaleSweep,
                         ::testing::Values(8192, 16384, 32768, 65536),
                         [](const auto& info) {
                           return "scale" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace orp::core
