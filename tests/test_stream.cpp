// orp::net::StreamNet — the simulated TCP-style transport behind DoTCP
// fallback. Covers the connection lifecycle, ordered multi-segment delivery
// with the 2-byte length prefix, refusal/reset semantics, SYN loss, and
// generation-counted staleness.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/stream.h"
#include "net/transport.h"

namespace orp::net {
namespace {

const Endpoint kClient{IPv4Addr(10, 0, 0, 1), 49152};
const Endpoint kServer{IPv4Addr(192, 0, 2, 53), kDnsPort};

/// Records every callback it receives, in order.
struct Recorder : StreamHandler {
  struct Closed {
    ConnId conn;
    bool reset;
  };
  std::vector<ConnId> accepted;
  std::vector<ConnId> established;
  std::vector<std::vector<std::uint8_t>> messages;
  std::vector<ConnId> message_conns;
  std::vector<Closed> closed;

  void on_accept(ConnId c, Endpoint) override { accepted.push_back(c); }
  void on_established(ConnId c) override { established.push_back(c); }
  void on_message(ConnId c, SimTime, const PayloadRef& msg) override {
    const auto s = msg.span();
    messages.emplace_back(s.begin(), s.end());
    message_conns.push_back(c);
  }
  void on_closed(ConnId c, bool reset) override {
    closed.push_back({c, reset});
  }
};

/// An echo server: answers every message with the same bytes.
struct Echo : Recorder {
  StreamNet* net = nullptr;
  void on_message(ConnId c, SimTime at, const PayloadRef& msg) override {
    Recorder::on_message(c, at, msg);
    net->send_message(c, msg.span());
  }
};

struct StreamFixture : ::testing::Test {
  EventLoop loop;
  BufferPool pool;
  StreamNet net{loop, pool, 7};
};

std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

// ---- Lifecycle -----------------------------------------------------------

TEST_F(StreamFixture, HandshakeThenMessageBothWaysThenClose) {
  Echo server;
  server.net = &net;
  Recorder client;
  net.listen(kServer, &server);

  const ConnId c = net.connect(kClient, kServer, &client);
  ASSERT_NE(c, kNilConn);
  EXPECT_FALSE(net.established(c));
  loop.run();
  ASSERT_EQ(client.established.size(), 1u);
  ASSERT_EQ(server.accepted.size(), 1u);
  EXPECT_TRUE(net.established(c));

  const auto query = bytes(31);
  ASSERT_TRUE(net.send_message(c, query));
  loop.run();
  ASSERT_EQ(server.messages.size(), 1u);
  EXPECT_EQ(server.messages[0], query);
  ASSERT_EQ(client.messages.size(), 1u);  // echoed back
  EXPECT_EQ(client.messages[0], query);

  net.close(c);
  loop.run();
  ASSERT_EQ(server.closed.size(), 1u);
  EXPECT_FALSE(server.closed[0].reset);
  EXPECT_EQ(net.active_conns(), 0u);
  EXPECT_EQ(net.stats().fins, 1u);
}

TEST_F(StreamFixture, EndpointsAreVisibleFromBothSides) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();
  EXPECT_EQ(net.local_endpoint(c), kClient);
  EXPECT_EQ(net.remote_endpoint(c), kServer);
  ASSERT_EQ(server.accepted.size(), 1u);
  EXPECT_EQ(net.local_endpoint(server.accepted[0]), kServer);
  EXPECT_EQ(net.remote_endpoint(server.accepted[0]), kClient);
}

TEST_F(StreamFixture, SendBeforeEstablishedIsRejected) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  EXPECT_FALSE(net.send_message(c, bytes(8)));
  loop.run();
  EXPECT_TRUE(net.send_message(c, bytes(8)));
}

// ---- Framing and ordering ------------------------------------------------

TEST_F(StreamFixture, LargeMessageSplitsAndReassemblesExactly) {
  Recorder server, client;
  net.listen(kServer, &server);
  net.set_mss(100);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();

  const auto big = bytes(1000, 3);  // 1002 wire bytes -> 11 segments
  const auto before = net.stats().segments_sent;
  ASSERT_TRUE(net.send_message(c, big));
  EXPECT_EQ(net.stats().segments_sent - before, 11u);
  loop.run();
  ASSERT_EQ(server.messages.size(), 1u);
  EXPECT_EQ(server.messages[0], big);
}

TEST_F(StreamFixture, MessagesArriveInSendOrder) {
  Recorder server, client;
  net.listen(kServer, &server);
  net.set_mss(64);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();

  // Mixed sizes so later (smaller) messages would overtake earlier (larger)
  // ones if arrival were not clamped to the connection's rx floor.
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::size_t n : {500u, 10u, 300u, 1u, 700u, 2u}) {
    sent.push_back(bytes(n, static_cast<std::uint8_t>(n)));
    ASSERT_TRUE(net.send_message(c, sent.back()));
  }
  loop.run();
  ASSERT_EQ(server.messages.size(), sent.size());
  EXPECT_EQ(server.messages, sent);
  EXPECT_EQ(net.stats().messages_delivered, sent.size());
}

TEST_F(StreamFixture, EmptyAndMaxSizeMessagesRoundTrip) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();

  ASSERT_TRUE(net.send_message(c, {}));
  const auto max = bytes(0xFFFF, 9);
  ASSERT_TRUE(net.send_message(c, max));
  loop.run();
  ASSERT_EQ(server.messages.size(), 2u);
  EXPECT_TRUE(server.messages[0].empty());
  EXPECT_EQ(server.messages[1], max);
}

TEST_F(StreamFixture, FinWaitsBehindInFlightData) {
  Recorder server, client;
  net.listen(kServer, &server);
  net.set_mss(50);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();

  ASSERT_TRUE(net.send_message(c, bytes(400)));
  net.close(c);  // FIN queued immediately behind 9 data segments
  loop.run();
  ASSERT_EQ(server.messages.size(), 1u);  // data was not cut off
  ASSERT_EQ(server.closed.size(), 1u);
  EXPECT_FALSE(server.closed[0].reset);
}

// ---- Refusal, reset, loss ------------------------------------------------

TEST_F(StreamFixture, ConnectToSilentEndpointIsRefused) {
  Recorder client;
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();
  ASSERT_EQ(client.closed.size(), 1u);
  EXPECT_TRUE(client.closed[0].reset);
  EXPECT_EQ(client.closed[0].conn, c);
  EXPECT_EQ(net.stats().refused, 1u);
  EXPECT_EQ(net.active_conns(), 0u);
}

TEST_F(StreamFixture, ResetTearsDownPeer) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();

  net.reset(c);
  EXPECT_FALSE(net.established(c));
  loop.run();
  ASSERT_EQ(server.closed.size(), 1u);
  EXPECT_TRUE(server.closed[0].reset);
  EXPECT_EQ(net.stats().resets, 1u);
  EXPECT_EQ(net.active_conns(), 0u);
}

TEST_F(StreamFixture, LostSynIsSilent) {
  Recorder server, client;
  net.listen(kServer, &server);
  net.set_loss_rate(1.0);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();
  // Nothing arrives anywhere: the caller's own timeout must notice.
  EXPECT_TRUE(client.established.empty());
  EXPECT_TRUE(client.closed.empty());
  EXPECT_TRUE(server.accepted.empty());
  EXPECT_EQ(net.stats().syn_lost, 1u);

  // The caller abandons its half — a quiet local free, no RST anywhere.
  net.reset(c);
  loop.run();
  EXPECT_TRUE(server.closed.empty());
  EXPECT_EQ(net.stats().resets, 0u);
  EXPECT_EQ(net.active_conns(), 0u);
}

TEST_F(StreamFixture, EstablishedConnectionsSurviveLoss) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();

  // Real TCP retransmits: data on an established connection always lands.
  net.set_loss_rate(1.0);
  ASSERT_TRUE(net.send_message(c, bytes(200)));
  loop.run();
  ASSERT_EQ(server.messages.size(), 1u);
}

// ---- Staleness and recycling ---------------------------------------------

TEST_F(StreamFixture, StaleConnIdIsInertAfterRecycle) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId first = net.connect(kClient, kServer, &client);
  loop.run();
  net.close(first);
  loop.run();

  // A slot recycles under a new generation; the old id must stay dead.
  const std::size_t slots = net.conn_slots();
  const ConnId second = net.connect(kClient, kServer, &client);
  EXPECT_EQ(net.conn_slots(), slots);  // reused a pooled record
  EXPECT_NE(second, first);
  loop.run();
  EXPECT_FALSE(net.send_message(first, bytes(4)));
  EXPECT_FALSE(net.established(first));
  EXPECT_TRUE(net.established(second));
  net.close(first);  // no-op, must not kill `second`
  EXPECT_TRUE(net.established(second));
}

TEST_F(StreamFixture, UserDataFollowsTheConnection) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  net.set_user_data(c, 0xDEADBEEFu);
  EXPECT_EQ(net.user_data(c), 0xDEADBEEFu);
  loop.run();
  net.close(c);
  EXPECT_EQ(net.user_data(c), 0u);  // stale reads are zero
}

TEST_F(StreamFixture, UnlistenRefusesNewConnections) {
  Recorder server, client;
  net.listen(kServer, &server);
  EXPECT_TRUE(net.listening(kServer));
  net.unlisten(kServer);
  EXPECT_FALSE(net.listening(kServer));
  net.connect(kClient, kServer, &client);
  loop.run();
  ASSERT_EQ(client.closed.size(), 1u);
  EXPECT_TRUE(client.closed[0].reset);
}

// ---- Byte accounting -----------------------------------------------------

TEST_F(StreamFixture, WireByteAccountingMatchesTheModel) {
  Recorder server, client;
  net.listen(kServer, &server);
  const ConnId c = net.connect(kClient, kServer, &client);
  loop.run();
  // Client handshake: SYN + final ACK out.
  EXPECT_EQ(net.conn_bytes_sent(c), StreamNet::kClientHandshakeBytes);
  // SYN-ACK in.
  EXPECT_EQ(net.conn_bytes_received(c), StreamNet::kSegmentOverhead);

  const auto msg = bytes(100);
  ASSERT_TRUE(net.send_message(c, msg));  // one segment: 40 + 2 + 100
  loop.run();
  EXPECT_EQ(net.conn_bytes_sent(c),
            StreamNet::kClientHandshakeBytes + StreamNet::kSegmentOverhead +
                2 + msg.size());
  ASSERT_EQ(server.accepted.size(), 1u);
  // Server side took the SYN, the final ACK, and the data segment off the
  // wire.
  EXPECT_EQ(net.conn_bytes_received(server.accepted[0]),
            StreamNet::kClientHandshakeBytes + StreamNet::kSegmentOverhead +
                2 + msg.size());
}

// ---- Determinism ---------------------------------------------------------

TEST_F(StreamFixture, IdenticalSeedsReplayIdenticalDeliveryTimes) {
  const auto run = [](std::uint64_t seed) {
    EventLoop loop;
    BufferPool pool;
    StreamNet net(loop, pool, seed);
    Recorder server, client;
    net.listen(kServer, &server);
    std::vector<double> times;
    struct Stamper : StreamHandler {
      std::vector<double>* times;
      void on_message(ConnId, SimTime at, const PayloadRef&) override {
        times->push_back(at.as_seconds());
      }
    } stamper;
    stamper.times = &times;
    net.listen(Endpoint{IPv4Addr(192, 0, 2, 54), kDnsPort}, &stamper);
    const ConnId c =
        net.connect(kClient, {IPv4Addr(192, 0, 2, 54), kDnsPort}, &client);
    loop.run();
    for (int i = 0; i < 5; ++i) {
      net.send_message(c, std::vector<std::uint8_t>(64, 1));
      loop.run();
    }
    return times;
  };
  const auto a = run(1234), b = run(1234), other = run(99);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST_F(StreamFixture, LazyStreamNetSchedulesNothingWhenUnused) {
  // The determinism-isolation contract: a Network whose streams() accessor
  // is never touched runs a UDP campaign with zero stream events.
  EventLoop l;
  Network n(l, 42);
  EXPECT_EQ(n.streams_or_null(), nullptr);
  StreamNet& s = n.streams();
  EXPECT_EQ(n.streams_or_null(), &s);
  EXPECT_EQ(s.stats().connects, 0u);
}

}  // namespace
}  // namespace orp::net
