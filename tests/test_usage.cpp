#include <gtest/gtest.h>

#include "authns/static_auth.h"
#include "core/usage_study.h"
#include "dns/builder.h"
#include "dns/edns.h"

namespace orp {
namespace {

// ---- StaticAuthServer ---------------------------------------------------------

class StaticAuthFixture : public ::testing::Test {
 protected:
  StaticAuthFixture() : net(loop, 3) {
    dns::SoaRdata soa;
    soa.mname = dns::DnsName::must_parse("ns1.site0.net");
    soa.rname = dns::DnsName::must_parse("hostmaster.site0.net");
    zone::Zone zone(dns::DnsName::must_parse("site0.net"), soa);
    zone.add(dns::ResourceRecord{dns::DnsName::must_parse("www.site0.net"),
                                 dns::RRType::kA, dns::RRClass::kIN, 300,
                                 dns::ARdata{net::IPv4Addr(93, 10, 0, 1)}});
    server = std::make_unique<authns::StaticAuthServer>(
        net, net::IPv4Addr(20, 0, 0, 1), std::move(zone));
    net.bind(client, [this](const net::Datagram& d) {
      auto decoded = dns::decode(d.payload);
      ASSERT_TRUE(decoded.has_value());
      replies.push_back(*std::move(decoded));
    });
  }

  void query(const char* qname, dns::RRType type = dns::RRType::kA) {
    net.send(net::Datagram{
        client, net::Endpoint{server->address(), net::kDnsPort},
        dns::encode(dns::make_query(1, dns::DnsName::must_parse(qname), type))});
    loop.run();
  }

  net::EventLoop loop;
  net::Network net;
  std::unique_ptr<authns::StaticAuthServer> server;
  net::Endpoint client{net::IPv4Addr(9, 9, 9, 9), 5353};
  std::vector<dns::Message> replies;
};

TEST_F(StaticAuthFixture, AnswersInZone) {
  query("www.site0.net");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].header.flags.aa);
  ASSERT_TRUE(replies[0].first_a_answer().has_value());
  EXPECT_EQ(replies[0].first_a_answer()->to_string(), "93.10.0.1");
  EXPECT_EQ(server->stats().answered, 1u);
}

TEST_F(StaticAuthFixture, NXDomainForUnknownName) {
  query("missing.site0.net");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kNXDomain);
  EXPECT_EQ(server->stats().nxdomain, 1u);
}

TEST_F(StaticAuthFixture, NoDataForWrongType) {
  query("www.site0.net", dns::RRType::kMX);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kNoError);
  EXPECT_FALSE(replies[0].has_answer());
}

TEST_F(StaticAuthFixture, RefusesOutOfZone) {
  query("www.other.org");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.flags.rcode, dns::Rcode::kRefused);
  EXPECT_EQ(server->stats().refused, 1u);
}

TEST_F(StaticAuthFixture, EchoesEdns) {
  dns::Message q =
      dns::make_query(1, dns::DnsName::must_parse("www.site0.net"));
  dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 4096});
  net.send(net::Datagram{client, net::Endpoint{server->address(), net::kDnsPort},
                         dns::encode(q)});
  loop.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(dns::extract_edns(replies[0]).has_value());
}

// ---- Usage study -----------------------------------------------------------------

core::UsageStudyConfig small_config() {
  core::UsageStudyConfig c;
  c.popular_domains = 20;
  c.open_resolvers = 40;
  c.clients = 80;
  c.queries_per_client = 5;
  c.seed = 7;
  return c;
}

TEST(UsageStudy, AllQueriesAnsweredAndAccounted) {
  const auto r = core::run_usage_study(small_config());
  EXPECT_EQ(r.queries_total, 400u);
  EXPECT_EQ(r.queries_answered, r.queries_total);
  EXPECT_LE(r.queries_misdirected, r.queries_answered);
  EXPECT_EQ(r.resolvers_total, 40u);
  EXPECT_GE(r.resolvers_malicious, 1u);
}

TEST(UsageStudy, NoMaliciousMeansNoMisdirection) {
  auto c = small_config();
  c.malicious_fraction = 0.0;
  const auto r = core::run_usage_study(c);
  EXPECT_EQ(r.resolvers_malicious, 0u);
  EXPECT_EQ(r.queries_misdirected, 0u);
  EXPECT_EQ(r.clients_on_malicious, 0u);
}

TEST(UsageStudy, FullyMaliciousPoolMisdirectsEverything) {
  auto c = small_config();
  c.malicious_fraction = 1.0;
  const auto r = core::run_usage_study(c);
  EXPECT_EQ(r.resolvers_malicious, r.resolvers_total);
  EXPECT_EQ(r.queries_misdirected, r.queries_answered);
  EXPECT_EQ(r.clients_on_malicious, r.clients_total);
  // Every misdirection resolves to a threat-reported address.
  std::uint64_t categorized = 0;
  for (const auto n : r.misdirected_by_category) categorized += n;
  EXPECT_EQ(categorized, r.queries_misdirected);
}

TEST(UsageStudy, MisdirectionGrowsWithMaliciousShare) {
  auto c = small_config();
  c.clients = 150;
  c.malicious_fraction = 0.05;
  const auto low = core::run_usage_study(c);
  c.malicious_fraction = 0.5;
  const auto high = core::run_usage_study(c);
  EXPECT_GT(high.queries_misdirected, low.queries_misdirected);
}

TEST(UsageStudy, DeterministicForSeed) {
  const auto a = core::run_usage_study(small_config());
  const auto b = core::run_usage_study(small_config());
  EXPECT_EQ(a.queries_misdirected, b.queries_misdirected);
  EXPECT_EQ(a.clients_on_malicious, b.clients_on_malicious);
}

TEST(UsageStudy, RenderMentionsKeyMetrics) {
  const auto r = core::run_usage_study(small_config());
  const std::string text = core::render_usage_study(r);
  EXPECT_NE(text.find("queries misdirected"), std::string::npos);
  EXPECT_NE(text.find("resolver pool"), std::string::npos);
}

}  // namespace
}  // namespace orp
