#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/apportion.h"
#include "util/expected.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace orp::util {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng a(42);
  Rng b(42);
  // Drawing from the parent before forking must not change the child stream.
  Rng child_a = a.fork(5);
  (void)b();
  (void)b();
  Rng child_b_reference = Rng(42).fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_a(), child_b_reference());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, Mix64IsStable) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(Rng, Fnv1aKnownValue) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(SampleCumulative, RespectsWeights) {
  Rng rng(5);
  const std::vector<double> cum{1.0, 1.0, 101.0};  // heavy third bucket
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 1000; ++i) ++counts[sample_cumulative(rng, cum)];
  EXPECT_GT(counts[2], 900);
  EXPECT_EQ(counts[1], 0);  // zero-width bucket never drawn
}

TEST(SampleCumulative, ThrowsOnEmpty) {
  Rng rng(5);
  EXPECT_THROW(sample_cumulative(rng, {}), std::invalid_argument);
}

TEST(ZipfSampler, HeadHeavierThanTail) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 1000);
}

// ---- apportion --------------------------------------------------------------

TEST(Apportion, ExactTotal) {
  const std::vector<std::uint64_t> counts{100, 200, 300};
  const auto out = apportion(counts, 60);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), 60u);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 20u);
  EXPECT_EQ(out[2], 30u);
}

TEST(Apportion, KeepsNonzeroCells) {
  const std::vector<std::uint64_t> counts{1, 1000000};
  const auto out = apportion(counts, 100, /*keep_nonzero=*/true);
  EXPECT_GE(out[0], 1u);
  EXPECT_EQ(out[0] + out[1], 100u);
}

TEST(Apportion, DropsTinyCellsWhenNotKeeping) {
  const std::vector<std::uint64_t> counts{1, 1000000};
  const auto out = apportion(counts, 100, /*keep_nonzero=*/false);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 100u);
}

TEST(Apportion, ZeroInputsStayZero) {
  const auto out = apportion({0, 5, 0, 5}, 10);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[2], 0u);
  EXPECT_EQ(out[1] + out[3], 10u);
}

TEST(Apportion, ZeroTargetGivesAllZero) {
  const auto out = apportion({3, 4}, 0);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 0u);
}

TEST(Apportion, UpscalesToo) {
  const auto out = apportion({1, 2, 3}, 600);
  EXPECT_EQ(out[0], 100u);
  EXPECT_EQ(out[1], 200u);
  EXPECT_EQ(out[2], 300u);
}

TEST(Apportion, OvercommittedFloorsAreTrimmed) {
  // 5 nonzero cells but target 3: keep_nonzero cannot hold.
  const auto out = apportion({10, 10, 10, 10, 10}, 3, /*keep_nonzero=*/true);
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), 3u);
}

// Property sweep: sums always land exactly on the target.
class ApportionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApportionSweep, SumAlwaysExact) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> counts(1 + rng.bounded(20));
    std::uint64_t source_total = 0;
    for (auto& c : counts) {
      c = rng.bounded(100000);
      source_total += c;
    }
    if (source_total == 0) continue;
    const std::uint64_t nonzero_cells = static_cast<std::uint64_t>(
        std::count_if(counts.begin(), counts.end(),
                      [](std::uint64_t c) { return c > 0; }));
    const std::uint64_t target = nonzero_cells + rng.bounded(200000);
    const auto out = apportion(counts, target, /*keep_nonzero=*/true);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}),
              target);
    for (std::size_t i = 0; i < counts.size(); ++i)
      if (counts[i] == 0) {
        EXPECT_EQ(out[i], 0u);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApportionSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ScaleCount, RoundsHalfUp) {
  EXPECT_EQ(scale_count(10, 1, 4), 3u);   // 2.5 -> 3
  EXPECT_EQ(scale_count(9, 1, 4), 2u);    // 2.25 -> 2
  EXPECT_EQ(scale_count(0, 1, 4), 0u);
  EXPECT_THROW(scale_count(1, 1, 0), std::invalid_argument);
}

TEST(Percent, Basics) {
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(percent(0, 0), 0.0);
}

// ---- strings ----------------------------------------------------------------

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(3702258432ULL), "3,702,258,432");
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.879, 3), "3.879");
  EXPECT_EQ(fixed(1.0, 1), "1.0");
}

TEST(Strings, HumanDuration) {
  EXPECT_EQ(human_duration(0), "0s");
  EXPECT_EQ(human_duration(59), "59s");
  EXPECT_EQ(human_duration(3600 * 11), "11h 0m");
  EXPECT_EQ(human_duration(7 * 86400 + 5 * 3600), "7d 5h");
}

TEST(Strings, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "-"), "a-b--c");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(Strings, AllDigits) {
  EXPECT_TRUE(all_digits("0123456789"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
}

TEST(Strings, ZeroPad) {
  EXPECT_EQ(zero_pad(7, 3), "007");
  EXPECT_EQ(zero_pad(1234, 3), "1234");
  EXPECT_EQ(zero_pad(0, 7), "0000000");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC.D"), "abc.d"); }

// ---- TextTable ---------------------------------------------------------------

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t({"a"});
  t.add_row({"1", "2", "3"});
  EXPECT_NE(t.render().find("3"), std::string::npos);
}

TEST(TextTable, EmptyRendersEmpty) {
  TextTable t;
  EXPECT_TRUE(t.render().empty());
}

TEST(SectionTitle, WrapsTitle) {
  const auto s = section_title("Table II");
  EXPECT_NE(s.find("Table II"), std::string::npos);
  EXPECT_EQ(s.front(), '=');
}

// ---- Expected ----------------------------------------------------------------

TEST(Expected, HoldsValueOrError) {
  Expected<int, std::string> ok(5);
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 5);

  Expected<int, std::string> err(std::string("boom"));
  EXPECT_FALSE(err.has_value());
  EXPECT_EQ(err.error(), "boom");
}

}  // namespace
}  // namespace orp::util
