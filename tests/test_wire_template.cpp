// Differential guarantees for the template-stamped wire path.
//
// A WireTemplate may only ever *decline* — it must never produce bytes that
// differ from the full encoder. These tests sweep every shape the pipeline
// stamps (probe queries, auth answers/NXDOMAINs, every fabricating resolver
// profile and its RRL slip) across a grid of variable assignments and
// memcmp the stamped bytes against the factory's full encoding. The same
// file pins the supporting machinery the scanner's hot path relies on:
// match() soundness (a successful match re-stamps to the exact input),
// derive() declining coupled or width-changing shapes, Lemire fastmod
// exactness, and the OutstandingTable replaying std::unordered_map's
// iteration order (which is digest-visible through the reap sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/edns.h"
#include "dns/truncate.h"
#include "dns/message.h"
#include "dns/wire_template.h"
#include "net/sim_time.h"
#include "prober/outstanding_table.h"
#include "resolver/behavior.h"
#include "resolver/scripted_resolver.h"
#include "zone/cluster.h"

namespace orp {
namespace {

using dns::DnsName;
using dns::EncodeBuffer;
using dns::Message;
using dns::StampVars;
using dns::WireTemplate;

zone::SubdomainScheme probe_scheme() {
  return zone::SubdomainScheme(DnsName::must_parse("ucfsealresearch.net"),
                               5'000'000, 7);
}

std::vector<std::uint8_t> to_vec(std::span<const std::uint8_t> s) {
  return {s.begin(), s.end()};
}

/// The var grid the sweeps run over: boundary and interior values of every
/// patchable width.
std::vector<StampVars> var_grid() {
  std::vector<StampVars> grid;
  for (const std::uint16_t txn : {0, 1, 0x1234, 0xFFFF})
    for (const std::uint32_t cluster : {0u, 7u, 42u, 999u})
      for (const std::uint32_t index : {0u, 9u, 1234567u, 9999999u})
        for (const std::uint32_t ttl : {0u, 300u, 86400u, 0x7FFFFFFFu})
          for (const std::uint32_t addr : {0u, 0x01020304u, 0xFFFFFFFFu})
            grid.push_back({txn, cluster, index, ttl, addr});
  return grid;
}

WireTemplate::Factory probe_factory(const zone::SubdomainScheme& scheme) {
  return [&scheme](const StampVars& v) {
    return dns::make_query(v.txn, scheme.qname({v.cluster, v.index}),
                           dns::RRType::kA);
  };
}

/// Core differential property: for every grid point the template covers,
/// stamped bytes == the factory's full encoding.
void expect_stamp_equals_encode(const WireTemplate& tpl,
                                const WireTemplate::Factory& make,
                                bool raw_counts = false) {
  ASSERT_TRUE(tpl.ok());
  EncodeBuffer stamp_buf, encode_buf;
  for (const StampVars& v : var_grid()) {
    ASSERT_TRUE(tpl.covers(v));
    const auto stamped = to_vec(tpl.stamp(v, stamp_buf));
    const Message full = make(v);
    const auto encoded =
        raw_counts ? to_vec(dns::encode_raw_counts_into(full, encode_buf))
                   : to_vec(dns::encode_into(full, encode_buf));
    ASSERT_EQ(stamped, encoded)
        << "txn=" << v.txn << " cluster=" << v.cluster << " index=" << v.index
        << " ttl=" << v.ttl << " addr=" << v.addr;
  }
}

// ---- Producer shapes -------------------------------------------------------

TEST(WireTemplate, ProbeQueryStampMatchesFullEncode) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const auto make = probe_factory(scheme);
  const WireTemplate tpl = WireTemplate::derive(make, scratch);
  expect_stamp_equals_encode(tpl, make);
}

TEST(WireTemplate, StampAppendMatchesStamp) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(probe_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());

  std::vector<std::uint8_t> arena;
  const StampVars a{0xBEEF, 12, 3456789, 0, 0};
  const StampVars b{0x0001, 999, 0, 0, 0};
  tpl.stamp_append(a, arena);
  tpl.stamp_append(b, arena);
  ASSERT_EQ(arena.size(), 2 * tpl.size());

  EncodeBuffer buf;
  const auto wa = to_vec(tpl.stamp(a, buf));
  const auto wb = to_vec(tpl.stamp(b, buf));
  EXPECT_TRUE(std::equal(wa.begin(), wa.end(), arena.begin()));
  EXPECT_TRUE(std::equal(wb.begin(), wb.end(), arena.begin() + tpl.size()));
}

/// The Q2 query shape the auth server recognizes: an iterative (RD=0) probe
/// A query carrying the resolver engines' default EDNS OPT.
WireTemplate::Factory q2_factory(const zone::SubdomainScheme& scheme) {
  return [&scheme](const StampVars& v) {
    Message q = dns::make_query(v.txn, scheme.qname({v.cluster, v.index}),
                                dns::RRType::kA);
    q.header.flags.rd = false;
    dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 4096});
    return q;
  };
}

TEST(WireTemplate, AuthAnswerStampMatchesFullEncode) {
  // The exact shape AuthServer stamps for in-zone probes: aa=1, ra=0, the
  // ground-truth A record with variable TTL and rdata, OPT echoed.
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const auto q2 = q2_factory(scheme);
  const auto make = [&](const StampVars& v) {
    Message r = dns::make_a_response(q2(v), net::IPv4Addr{v.addr}, v.ttl,
                                     /*ra=*/false, /*aa=*/true);
    dns::set_edns(r, dns::EdnsInfo{.udp_payload_size = 4096});
    return r;
  };
  const WireTemplate tpl = WireTemplate::derive(make, scratch);
  expect_stamp_equals_encode(tpl, make);
}

TEST(WireTemplate, AuthNxdomainStampMatchesFullEncode) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const auto q2 = q2_factory(scheme);
  const auto make = [&](const StampVars& v) {
    Message r = dns::make_error_response(q2(v), dns::Rcode::kNXDomain,
                                         /*ra=*/false);
    r.header.flags.aa = true;
    dns::set_edns(r, dns::EdnsInfo{.udp_payload_size = 4096});
    return r;
  };
  const WireTemplate tpl = WireTemplate::derive(make, scratch);
  expect_stamp_equals_encode(tpl, make);
}

TEST(WireTemplate, AuthQueryTemplateDistinguishesEdnsVariants) {
  // The Q2 template must match only its exact shape: the recursive probe
  // (RD=1, no OPT), a DO=1 validator query, and a 65535-size "TCP" retry
  // all differ in bytes and must take the slow path (their stats depend on
  // full decode).
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(q2_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());

  EncodeBuffer buf;
  StampVars got;
  const StampVars v{0x77, 5, 67890, 0, 0};
  EXPECT_TRUE(tpl.match(tpl.stamp(v, buf), got));

  Message rd1 = dns::make_query(0x77, scheme.qname({5, 67890}));
  dns::set_edns(rd1, dns::EdnsInfo{.udp_payload_size = 4096});
  EXPECT_FALSE(tpl.match(dns::encode_into(rd1, buf), got));  // RD=1

  Message do1 = q2_factory(scheme)(v);
  dns::set_edns(do1, dns::EdnsInfo{.udp_payload_size = 4096, .do_bit = true});
  EXPECT_FALSE(tpl.match(dns::encode_into(do1, buf), got));

  Message tcp = q2_factory(scheme)(v);
  dns::set_edns(tcp, dns::EdnsInfo{.udp_payload_size = 65535});
  EXPECT_FALSE(tpl.match(dns::encode_into(tcp, buf), got));

  Message plain = dns::make_query(0x77, scheme.qname({5, 67890}));
  plain.header.flags.rd = false;
  EXPECT_FALSE(tpl.match(dns::encode_into(plain, buf), got));  // no OPT
}

TEST(WireTemplate, CoversRejectsWideIds) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(probe_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());
  EXPECT_TRUE(tpl.covers({0, 999, 9999999, 0, 0}));
  EXPECT_FALSE(tpl.covers({0, 1000, 0, 0, 0}));       // 4-digit cluster
  EXPECT_FALSE(tpl.covers({0, 0, 10'000'000, 0, 0}));  // 8-digit index
}

// ---- Resolver profiles -----------------------------------------------------

std::vector<resolver::BehaviorProfile> fabricating_profiles() {
  using resolver::AnswerMode;
  std::vector<resolver::BehaviorProfile> out;
  for (const AnswerMode mode :
       {AnswerMode::kNone, AnswerMode::kFixedIp, AnswerMode::kUrl,
        AnswerMode::kGarbageString, AnswerMode::kUndecodable})
    for (const bool ra : {false, true})
      for (const bool aa : {false, true})
        for (const dns::Rcode rcode : {dns::Rcode::kNoError,
                                       dns::Rcode::kRefused})
          for (const bool omit : {false, true}) {
            resolver::BehaviorProfile p;
            p.answer = mode;
            p.ra = ra;
            p.aa = aa;
            p.rcode = rcode;
            p.omit_question = omit;
            p.fixed_answer = net::IPv4Addr(198, 51, 100, 7);
            p.text_answer = mode == AnswerMode::kUrl ? "u.dcoin.co"
                                                     : "xysvc-garbage-!!";
            out.push_back(std::move(p));
          }
  return out;
}

TEST(ResolverTemplates, EveryProfileShapeStampsIdentically) {
  // All 80 fabricating shapes (5 answer modes x ra x aa x rcode x
  // omit_question): the shared template triple must derive usable, and both
  // the response and the RRL slip must stamp byte-identically to the slow
  // path's build + encode.
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const resolver::ProbeQnameFactory qname =
      [&scheme](std::uint32_t cluster, std::uint32_t index) {
        return scheme.qname({cluster, index});
      };
  for (const resolver::BehaviorProfile& profile : fabricating_profiles()) {
    const resolver::ResponseTemplates t =
        resolver::build_response_templates(profile, qname, scratch);
    ASSERT_TRUE(t.ok()) << "mode=" << to_string(profile.answer)
                        << " ra=" << profile.ra << " aa=" << profile.aa
                        << " omit=" << profile.omit_question;
    EXPECT_EQ(t.raw_counts,
              profile.answer == resolver::AnswerMode::kUndecodable);

    const auto probe = probe_factory(scheme);
    const auto response_factory = [&](const StampVars& v) {
      bool rc = false;
      return resolver::build_fabricated_response(profile, probe(v), rc);
    };
    const auto slip_factory = [&](const StampVars& v) {
      bool rc = false;
      Message r = resolver::build_fabricated_response(profile, probe(v), rc);
      r.answers.clear();
      r.authority.clear();
      r.additional.clear();
      r.header.flags.tc = true;
      return r;
    };
    expect_stamp_equals_encode(t.response, response_factory, t.raw_counts);
    expect_stamp_equals_encode(t.slip, slip_factory);

    // The profile's query template recognizes a stamped probe and recovers
    // its id exactly.
    EncodeBuffer buf;
    const StampVars sent{0xABCD, 41, 7654321, 0, 0};
    const auto wire = to_vec(dns::encode_into(probe(sent), buf));
    StampVars got;
    ASSERT_TRUE(t.query.match(wire, got));
    EXPECT_EQ(got.txn, sent.txn);
    EXPECT_EQ(got.cluster, sent.cluster);
    EXPECT_EQ(got.index, sent.index);
  }
}

TEST(ResolverTemplates, UnusableForProfilesTheFastPathCannotServe) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const resolver::ProbeQnameFactory qname =
      [&scheme](std::uint32_t cluster, std::uint32_t index) {
        return scheme.qname({cluster, index});
      };

  resolver::BehaviorProfile silent;
  silent.respond = false;
  EXPECT_FALSE(resolver::build_response_templates(silent, qname, scratch).ok());

  resolver::BehaviorProfile fwd;
  fwd.forwarder = true;
  fwd.upstream = net::IPv4Addr(10, 0, 0, 1);
  EXPECT_FALSE(resolver::build_response_templates(fwd, qname, scratch).ok());

  resolver::BehaviorProfile recursive;
  recursive.answer = resolver::AnswerMode::kRecursive;
  EXPECT_FALSE(
      resolver::build_response_templates(recursive, qname, scratch).ok());
}

// ---- match() ---------------------------------------------------------------

TEST(WireTemplateMatch, RoundTripRecoversVars) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(probe_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());

  EncodeBuffer buf;
  for (const StampVars& v : var_grid()) {
    const auto wire = tpl.stamp(v, buf);
    StampVars got;
    ASSERT_TRUE(tpl.match(wire, got));
    EXPECT_EQ(got.txn, v.txn);
    EXPECT_EQ(got.cluster, v.cluster);
    EXPECT_EQ(got.index, v.index);
  }
}

TEST(WireTemplateMatch, EveryByteMutationIsSound) {
  // Soundness: a match is a proof that stamping the recovered vars
  // reproduces the wire exactly. Mutate every byte of a stamped probe; each
  // mutant must either fail to match or round-trip to its own bytes (a
  // digit flipped to another digit is still a valid — different — probe).
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(probe_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());

  EncodeBuffer buf;
  const StampVars v{0x5A5A, 123, 4567890, 0, 0};
  const auto wire = to_vec(tpl.stamp(v, buf));
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t delta : {0x01, 0x80}) {
      std::vector<std::uint8_t> mutant = wire;
      mutant[i] ^= delta;
      StampVars got;
      if (tpl.match(mutant, got)) {
        const auto restamped = to_vec(tpl.stamp(got, buf));
        EXPECT_EQ(restamped, mutant) << "byte " << i << " delta " << +delta;
      }
    }
  }
}

TEST(WireTemplateMatch, RejectsForeignAndResizedPackets) {
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(probe_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());

  EncodeBuffer buf;
  StampVars got;

  // Wrong qtype.
  Message txt = dns::make_query(7, scheme.qname({1, 2}), dns::RRType::kTXT);
  EXPECT_FALSE(tpl.match(dns::encode_into(txt, buf), got));

  // CHAOS-class version.bind (the fingerprinting probe).
  Message chaos = dns::make_query(7, DnsName::must_parse("version.bind"),
                                  dns::RRType::kTXT);
  chaos.questions.front().qclass = dns::RRClass::kCH;
  EXPECT_FALSE(tpl.match(dns::encode_into(chaos, buf), got));

  // A foreign domain of similar shape.
  Message other = dns::make_query(
      7, DnsName::must_parse("or001.0000002.example.net"), dns::RRType::kA);
  EXPECT_FALSE(tpl.match(dns::encode_into(other, buf), got));

  // An out-of-width id renders a longer qname, so it cannot match.
  Message wide = dns::make_query(7, scheme.qname({1000, 5}), dns::RRType::kA);
  EXPECT_FALSE(tpl.match(dns::encode_into(wide, buf), got));

  // Truncated and extended copies of a genuine probe.
  const auto wire = to_vec(tpl.stamp({1, 2, 3, 0, 0}, buf));
  EXPECT_FALSE(tpl.match(std::span(wire).first(wire.size() - 1), got));
  std::vector<std::uint8_t> longer = wire;
  longer.push_back(0);
  EXPECT_FALSE(tpl.match(longer, got));
}

TEST(WireTemplateMatch, DeclinesTcpFramedShapes) {
  // A stream segment carries the RFC 1035 §4.2.2 2-byte length prefix; if
  // such bytes ever reached the datagram fast path, match must decline —
  // the prefix shifts every literal run by two.
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(probe_factory(scheme), scratch);
  ASSERT_TRUE(tpl.ok());

  EncodeBuffer buf;
  const auto wire = to_vec(tpl.stamp({0x5151, 3, 1234567, 0, 0}, buf));
  std::vector<std::uint8_t> framed;
  framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
  framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xFF));
  framed.insert(framed.end(), wire.begin(), wire.end());
  StampVars got;
  EXPECT_FALSE(tpl.match(framed, got));
  // Same-length check: frame it, then drop the last two payload bytes so
  // only the shift (not the size) distinguishes it.
  EXPECT_FALSE(tpl.match(std::span(framed).first(wire.size()), got));
}

TEST(WireTemplateMatch, DeclinesTruncatedTcFlaggedShapes) {
  // Differential pair for the fallback path: a TC=1 copy of a stamped auth
  // answer (and any whole-record Truncator cut of it) must decline at the
  // template layer while the full decoder still reads it — truncated
  // answers always take the slow path, where the TC bit is acted on.
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const auto q2 = q2_factory(scheme);
  const auto make = [&](const StampVars& v) {
    Message r = dns::make_a_response(q2(v), net::IPv4Addr{v.addr}, v.ttl,
                                     /*ra=*/false, /*aa=*/true);
    dns::set_edns(r, dns::EdnsInfo{.udp_payload_size = 4096});
    return r;
  };
  const WireTemplate tpl = WireTemplate::derive(make, scratch);
  ASSERT_TRUE(tpl.ok());

  EncodeBuffer buf;
  const StampVars v{0x2222, 5, 7654321, 300, 0x0A000001};
  const auto wire = to_vec(tpl.stamp(v, buf));
  StampVars got;
  ASSERT_TRUE(tpl.match(wire, got));

  // Flag the TC bit only: same length, one flags byte differs.
  std::vector<std::uint8_t> tc = wire;
  tc[2] |= 0x02;
  EXPECT_FALSE(tpl.match(tc, got));
  const auto decoded = dns::decode(tc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->header.flags.tc);

  // Every whole-record cut of the answer declines too, and stays decodable.
  for (std::size_t budget = dns::Truncator::kHeaderSize;
       budget < wire.size(); ++budget) {
    std::vector<std::uint8_t> cut = wire;
    const std::size_t len = dns::Truncator::truncate(cut, budget);
    ASSERT_LE(len, wire.size());
    EXPECT_FALSE(tpl.match(std::span(cut.data(), len), got)) << budget;
    ASSERT_TRUE(dns::decode(std::span(cut.data(), len)).has_value()) << budget;
  }
}

// ---- derive() declining ----------------------------------------------------

TEST(WireTemplateDerive, DeclinesWidthChangingShapes) {
  // Unpadded decimal rendering: the fingerprint index has more digits than
  // the base, the encoding changes length, and derive must refuse.
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(
      [](const StampVars& v) {
        return dns::make_query(
            v.txn,
            DnsName::must_parse("x" + std::to_string(v.index) + ".example.com"),
            dns::RRType::kA);
      },
      scratch);
  EXPECT_FALSE(tpl.ok());
}

TEST(WireTemplateDerive, DeclinesCoupledFields) {
  // A message where the TTL appears both verbatim and transformed (+1): the
  // transformed copy's bytes do not equal any fingerprint byte, so the
  // differential probe cannot attribute them and must refuse — stamping
  // such a shape would silently miss the coupled copy.
  const auto scheme = probe_scheme();
  EncodeBuffer scratch;
  const WireTemplate tpl = WireTemplate::derive(
      [&](const StampVars& v) {
        const DnsName qname = scheme.qname({v.cluster, v.index});
        Message r = dns::make_a_response(
            dns::make_query(v.txn, qname, dns::RRType::kA),
            net::IPv4Addr{v.addr}, v.ttl);
        r.answers.push_back(dns::ResourceRecord{
            qname, dns::RRType::kA, dns::RRClass::kIN, v.ttl + 1,
            dns::ARdata{net::IPv4Addr{v.addr}}});
        return r;
      },
      scratch);
  EXPECT_FALSE(tpl.ok());
}

TEST(WireTemplateDerive, ConstantShapeStampsItsOneMessage) {
  // A factory that ignores every var yields a patchless template: stamping
  // is a pure memcpy and still equals the full encoding.
  EncodeBuffer scratch;
  const auto make = [](const StampVars&) {
    return dns::make_query(99, DnsName::must_parse("static.example.com"),
                           dns::RRType::kA);
  };
  const WireTemplate tpl = WireTemplate::derive(make, scratch);
  ASSERT_TRUE(tpl.ok());
  EncodeBuffer buf, buf2;
  const auto stamped = to_vec(tpl.stamp({0xFFFF, 999, 9999999, 1, 2}, buf));
  EXPECT_EQ(stamped, to_vec(dns::encode_into(make({}), buf2)));
}

// ---- FastMod ---------------------------------------------------------------

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

TEST(FastMod, MatchesDivideAcrossBucketCounts) {
  // Every divisor the bucket table can take: libstdc++'s small rehash
  // primes, large primes near the top of the table, and adversarial
  // non-primes for good measure.
  const std::uint64_t divisors[] = {
      1,       2,       3,        5,         7,         13,        29,
      59,      127,     257,      541,       1109,      2357,      5087,
      10273,   42043,   85229,    712697,    5967347,   49969847,
      206062531, 849749479, 1725587117, 4294967291ull, 6442450939ull};
  std::uint64_t rng = 42;
  for (const std::uint64_t d : divisors) {
    prober::FastMod fm;
    fm.set(d);
    const std::uint64_t edges[] = {0,     1,     d - 1, d,    d + 1,
                                   2 * d, ~0ull, ~0ull - 1, d * d};
    for (const std::uint64_t n : edges) EXPECT_EQ(fm.mod(n), n % d) << d;
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t n = splitmix(rng);
      ASSERT_EQ(fm.mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

// ---- OutstandingTable ------------------------------------------------------

/// A hasher shared verbatim by the table and the reference map, so both
/// containers see identical hash values (the table's contract).
struct MixHash {
  std::size_t operator()(std::uint64_t k) const noexcept {
    std::uint64_t z = k + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

TEST(OutstandingTable, ReplaysUnorderedMapIterationOrder) {
  // Interleaved inserts, duplicate inserts, and erases driven by one
  // deterministic stream, applied to the table and to the hashtable it
  // replaced. Size and membership must agree everywhere; on libstdc++ the
  // full iteration order must be byte-identical too (the digest-visible
  // property the reap sweep depends on).
  prober::OutstandingTable<MixHash> table{MixHash{}};
  std::unordered_map<std::uint64_t, net::SimTime, MixHash> ref;
  std::vector<std::uint64_t> live;

  std::uint64_t rng = 7;
  for (int step = 0; step < 6000; ++step) {
    const std::uint64_t roll = splitmix(rng);
    if (roll % 4 == 0 && !live.empty()) {
      // Erase a currently-present key.
      const std::size_t at = roll / 7 % live.size();
      const std::uint64_t key = live[at];
      live[at] = live.back();
      live.pop_back();
      ref.erase(key);
      const std::uint32_t h = table.find(key);
      ASSERT_NE(h, prober::OutstandingTable<MixHash>::kNil);
      table.erase_at(h);
    } else if (roll % 16 == 1 && !live.empty()) {
      // Duplicate insert: a no-op on both sides.
      const std::uint64_t key = live[roll / 7 % live.size()];
      ref.emplace(key, net::SimTime::millis(step));
      table.emplace(key, net::SimTime::millis(step));
    } else {
      const std::uint64_t key = roll >> 16;  // occasional natural collisions
      if (ref.emplace(key, net::SimTime::millis(step)).second)
        live.push_back(key);
      table.emplace(key, net::SimTime::millis(step));
    }
    ASSERT_EQ(table.size(), ref.size());
  }

  // Membership + stored values agree.
  for (const auto& [key, sent] : ref) {
    const std::uint32_t h = table.find(key);
    ASSERT_NE(h, prober::OutstandingTable<MixHash>::kNil);
    EXPECT_EQ(table.key_at(h), key);
    EXPECT_EQ(table.sent_at(h), sent);
  }
  EXPECT_EQ(table.find(~0ull), prober::OutstandingTable<MixHash>::kNil);

#ifdef __GLIBCXX__
  // Iteration order replay — the load-bearing property.
  std::vector<std::uint64_t> table_order;
  for (std::uint32_t i = table.first();
       i != prober::OutstandingTable<MixHash>::kNil; i = table.next(i))
    table_order.push_back(table.key_at(i));
  std::vector<std::uint64_t> map_order;
  for (const auto& [key, sent] : ref) map_order.push_back(key);
  ASSERT_EQ(table_order, map_order);
#endif
}

TEST(OutstandingTable, EraseWhileIteratingMatchesMapSemantics) {
  prober::OutstandingTable<MixHash> table{MixHash{}};
  std::unordered_map<std::uint64_t, net::SimTime, MixHash> ref;
  for (std::uint64_t k = 1; k <= 300; ++k) {
    table.emplace(k * 0x10001, net::SimTime::millis(k));
    ref.emplace(k * 0x10001, net::SimTime::millis(k));
  }
  // Reap every key with an odd low bit, erase-while-iterating on both.
  for (std::uint32_t i = table.first();
       i != prober::OutstandingTable<MixHash>::kNil;) {
    if (table.key_at(i) & 1)
      i = table.erase_at(i);
    else
      i = table.next(i);
  }
  for (auto it = ref.begin(); it != ref.end();) {
    if (it->first & 1)
      it = ref.erase(it);
    else
      ++it;
  }
  ASSERT_EQ(table.size(), ref.size());
#ifdef __GLIBCXX__
  std::vector<std::uint64_t> table_order;
  for (std::uint32_t i = table.first();
       i != prober::OutstandingTable<MixHash>::kNil; i = table.next(i))
    table_order.push_back(table.key_at(i));
  std::vector<std::uint64_t> map_order;
  for (const auto& [key, sent] : ref) map_order.push_back(key);
  ASSERT_EQ(table_order, map_order);
#endif
}

}  // namespace
}  // namespace orp
