#include <gtest/gtest.h>

#include <set>

#include "net/reserved.h"
#include "zone/cluster.h"
#include "zone/zone.h"

namespace orp::zone {
namespace {

dns::SoaRdata test_soa() {
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("ns1.sld.net");
  soa.rname = dns::DnsName::must_parse("hostmaster.sld.net");
  return soa;
}

// ---- Zone -------------------------------------------------------------------

class ZoneTest : public ::testing::Test {
 protected:
  ZoneTest() : zone(dns::DnsName::must_parse("sld.net"), test_soa()) {
    zone.add(dns::ResourceRecord{dns::DnsName::must_parse("www.sld.net"),
                                 dns::RRType::kA, dns::RRClass::kIN, 300,
                                 dns::ARdata{net::IPv4Addr(1, 2, 3, 4)}});
    zone.add(dns::ResourceRecord{
        dns::DnsName::must_parse("www.sld.net"), dns::RRType::kTXT,
        dns::RRClass::kIN, 300, dns::TxtRdata{{"hello"}}});
  }
  Zone zone;
};

TEST_F(ZoneTest, AnswerForExistingRecord) {
  const auto r = zone.lookup(dns::DnsName::must_parse("www.sld.net"),
                             dns::RRType::kA);
  EXPECT_EQ(r.status, LookupStatus::kAnswer);
  ASSERT_EQ(r.records.size(), 1u);
}

TEST_F(ZoneTest, NoDataForWrongType) {
  const auto r = zone.lookup(dns::DnsName::must_parse("www.sld.net"),
                             dns::RRType::kMX);
  EXPECT_EQ(r.status, LookupStatus::kNoData);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(ZoneTest, NXDomainForMissingName) {
  const auto r = zone.lookup(dns::DnsName::must_parse("nope.sld.net"),
                             dns::RRType::kA);
  EXPECT_EQ(r.status, LookupStatus::kNXDomain);
}

TEST_F(ZoneTest, OutOfZoneRefused) {
  const auto r =
      zone.lookup(dns::DnsName::must_parse("example.com"), dns::RRType::kA);
  EXPECT_EQ(r.status, LookupStatus::kOutOfZone);
}

TEST_F(ZoneTest, AnyCollectsAllTypes) {
  const auto r = zone.lookup(dns::DnsName::must_parse("www.sld.net"),
                             dns::RRType::kANY);
  EXPECT_EQ(r.status, LookupStatus::kAnswer);
  EXPECT_EQ(r.records.size(), 2u);  // A + TXT: the amplification payload
}

TEST_F(ZoneTest, ApexHasSoa) {
  const auto r =
      zone.lookup(dns::DnsName::must_parse("sld.net"), dns::RRType::kSOA);
  EXPECT_EQ(r.status, LookupStatus::kAnswer);
}

TEST_F(ZoneTest, CaseInsensitiveLookup) {
  const auto r = zone.lookup(dns::DnsName::must_parse("WWW.SLD.NET"),
                             dns::RRType::kA);
  EXPECT_EQ(r.status, LookupStatus::kAnswer);
}

TEST_F(ZoneTest, RejectsOutOfZoneAdd) {
  EXPECT_THROW(
      zone.add(dns::ResourceRecord{dns::DnsName::must_parse("other.org"),
                                   dns::RRType::kA, dns::RRClass::kIN, 60,
                                   dns::ARdata{net::IPv4Addr(1, 1, 1, 1)}}),
      std::invalid_argument);
}

TEST_F(ZoneTest, BulkAddAndSerial) {
  const auto before = zone.serial();
  zone.add_a_records({{dns::DnsName::must_parse("h1.sld.net"),
                       net::IPv4Addr(9, 9, 9, 9)},
                      {dns::DnsName::must_parse("h2.sld.net"),
                       net::IPv4Addr(9, 9, 9, 10)}},
                     120);
  zone.bump_serial();
  EXPECT_EQ(zone.serial(), before + 1);
  EXPECT_EQ(zone.lookup(dns::DnsName::must_parse("h2.sld.net"),
                        dns::RRType::kA)
                .status,
            LookupStatus::kAnswer);
}

// ---- SubdomainScheme -----------------------------------------------------------

class SchemeTest : public ::testing::Test {
 protected:
  SubdomainScheme scheme{dns::DnsName::must_parse("ucfsealresearch.net"),
                         5'000'000, 77};
};

TEST_F(SchemeTest, QnameFormatMatchesPaperFigure3) {
  // Fig. 3: or<3-digit cluster>.<7-digit index>.<sld>
  EXPECT_EQ(scheme.qname({0, 0}).to_string(),
            "or000.0000000.ucfsealresearch.net");
  EXPECT_EQ(scheme.qname({12, 34567}).to_string(),
            "or012.0034567.ucfsealresearch.net");
}

TEST_F(SchemeTest, ParseRoundTrip) {
  for (const SubdomainId id : {SubdomainId{0, 0}, SubdomainId{3, 4999999},
                               SubdomainId{999, 1234567}}) {
    const auto parsed = scheme.parse(scheme.qname(id));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, id);
  }
}

TEST_F(SchemeTest, ParseRejectsForeignNames) {
  for (const char* s :
       {"www.ucfsealresearch.net", "or0x1.0000001.ucfsealresearch.net",
        "or001.abc.ucfsealresearch.net", "or001.0000001.example.net",
        "deep.or001.0000001.ucfsealresearch.net", "ucfsealresearch.net"}) {
    EXPECT_FALSE(scheme.parse(dns::DnsName::must_parse(s)).has_value()) << s;
  }
}

TEST_F(SchemeTest, GroundTruthDeterministicAndPublic) {
  const auto a = scheme.ground_truth({1, 2});
  EXPECT_EQ(a, scheme.ground_truth({1, 2}));
  EXPECT_NE(a, scheme.ground_truth({1, 3}));
  for (std::uint32_t i = 0; i < 500; ++i)
    EXPECT_FALSE(net::is_reserved(scheme.ground_truth({0, i})));
}

TEST_F(SchemeTest, GroundTruthDependsOnSeed) {
  SubdomainScheme other{dns::DnsName::must_parse("ucfsealresearch.net"),
                        5'000'000, 78};
  int differ = 0;
  for (std::uint32_t i = 0; i < 100; ++i)
    if (scheme.ground_truth({0, i}) != other.ground_truth({0, i})) ++differ;
  EXPECT_GT(differ, 95);
}

// ---- ClusterManager --------------------------------------------------------------

TEST(ClusterManager, SequentialFreshAllocation) {
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 4, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(1.0));
  EXPECT_EQ(mgr.acquire(), (SubdomainId{0, 0}));
  EXPECT_EQ(mgr.acquire(), (SubdomainId{0, 1}));
  EXPECT_EQ(mgr.stats().clusters_loaded, 1u);
}

TEST(ClusterManager, PrefersReuseOverRotation) {
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 2, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(1.0));
  const auto a = mgr.acquire();
  const auto b = mgr.acquire();
  mgr.release_unanswered(a);
  mgr.retire_answered(b);
  const auto c = mgr.acquire();  // must reuse a, not rotate
  EXPECT_EQ(c, a);
  EXPECT_EQ(mgr.current_cluster(), 0u);
  EXPECT_EQ(mgr.stats().subdomains_reused, 1u);
}

TEST(ClusterManager, RotatesWhenEverythingConsumed) {
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 2, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(1.0));
  mgr.retire_answered(mgr.acquire());
  mgr.retire_answered(mgr.acquire());
  const auto c = mgr.acquire();
  EXPECT_EQ(c, (SubdomainId{1, 0}));
  EXPECT_EQ(mgr.stats().clusters_loaded, 2u);
}

TEST(ClusterManager, AcceptsReleasesFromPreviousResidentCluster) {
  // The auth server keeps the current and previous cluster resident, so a
  // name from cluster N-1 is still reusable after one rotation...
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 1, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(1.0));
  const auto a = mgr.acquire();        // cluster 0 exhausted
  mgr.retire_answered(a);
  const auto b = mgr.acquire();        // rotates to cluster 1
  EXPECT_EQ(b.cluster, 1u);
  mgr.release_unanswered(a);           // previous cluster: still reusable
  mgr.retire_answered(b);
  EXPECT_EQ(mgr.acquire(), a);
}

TEST(ClusterManager, DropsReleasesFromUnloadedClusters) {
  // ...but after two rotations the cluster-0 name has left residency and a
  // late release must be discarded.
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 1, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(1.0));
  const auto a = mgr.acquire();
  mgr.retire_answered(a);
  const auto b = mgr.acquire();  // cluster 1
  mgr.retire_answered(b);
  const auto c = mgr.acquire();  // cluster 2
  EXPECT_EQ(c.cluster, 2u);
  mgr.release_unanswered(a);     // two rotations stale: ignored
  mgr.retire_answered(c);
  EXPECT_EQ(mgr.acquire().cluster, 3u);
}

TEST(ClusterManager, ReuseNeverReturnsAnsweredNames) {
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 8, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(1.0));
  std::vector<SubdomainId> issued;
  for (int i = 0; i < 8; ++i) issued.push_back(mgr.acquire());
  // Answer even indices, release odd ones.
  std::set<std::uint32_t> answered;
  for (std::size_t i = 0; i < issued.size(); ++i) {
    if (i % 2 == 0) {
      mgr.retire_answered(issued[i]);
      answered.insert(issued[i].index);
    } else {
      mgr.release_unanswered(issued[i]);
    }
  }
  for (int i = 0; i < 4; ++i) {
    const auto id = mgr.acquire();
    EXPECT_EQ(id.cluster, 0u);
    EXPECT_FALSE(answered.contains(id.index));
  }
}

TEST(ClusterManager, LoadTimeAccumulates) {
  SubdomainScheme scheme{dns::DnsName::must_parse("s.net"), 1, 1};
  ClusterManager mgr(scheme, net::SimTime::seconds(60.0));
  mgr.retire_answered(mgr.acquire());
  mgr.retire_answered(mgr.acquire());
  EXPECT_EQ(mgr.stats().load_time_total, net::SimTime::seconds(120.0));
}

}  // namespace
}  // namespace orp::zone
